// Coloring-as-a-service (src/svc): epoch batching, determinism across
// executor thread counts, legality under sustained churn, adjustment
// locality versus a full-recolor oracle, workload reproducibility, and the
// agcd wire protocol.
#include <gtest/gtest.h>

#include <queue>
#include <set>
#include <string>
#include <vector>

#include "agc/exec/executor.hpp"
#include "agc/graph/checks.hpp"
#include "agc/obs/event_sink.hpp"
#include "agc/svc/service.hpp"
#include "agc/svc/wire.hpp"
#include "agc/svc/workload.hpp"

namespace {

using namespace agc;
using svc::Op;
using svc::OpKind;
using svc::OpResult;
using svc::OpStatus;

svc::ServiceConfig small_config(std::size_t threads = 1) {
  svc::ServiceConfig cfg;
  cfg.spec = graph::GraphSpec::parse("regular:200,6,9");
  cfg.epoch_batch = 32;
  if (threads > 1) cfg.run.executor = exec::make_executor(threads);
  return cfg;
}

/// The deterministic projection of a result stream: everything but the
/// wall-clock latency.
std::string fingerprint(const std::vector<OpResult>& results) {
  std::string out;
  for (const OpResult& r : results) {
    out += std::to_string(r.op_id) + ':' + svc::to_string(r.kind) + ':' +
           std::to_string(static_cast<int>(r.status)) + ':' +
           std::to_string(r.value) + ':' + std::to_string(r.epoch) + ':' +
           std::to_string(r.latency_rounds) + '\n';
  }
  return out;
}

// ---------------------------------------------------------------------------
// Epoch batching basics
// ---------------------------------------------------------------------------

TEST(ServiceBasics, BootsSettledAndAnswersQueries) {
  svc::Service service(small_config());
  EXPECT_EQ(service.stats().legality_violations, 0u);
  EXPECT_TRUE(graph::is_proper_coloring(service.graph(), service.colors()));
  service.submit(Op{OpKind::QueryColor, 5, 0});
  const auto results = service.pump();
  ASSERT_EQ(results.size(), 1u);
  EXPECT_EQ(results[0].status, OpStatus::Ok);
  EXPECT_LT(results[0].value, service.coloring_config().final_palette());
  // Query-only epochs never step the engine.
  EXPECT_EQ(results[0].latency_rounds, 0u);
}

TEST(ServiceBasics, EpochBatchSplitsQueue) {
  auto cfg = small_config();
  cfg.epoch_batch = 4;
  svc::Service service(cfg);
  for (int i = 0; i < 10; ++i) service.submit(Op{OpKind::QueryColor, 0, 0});
  EXPECT_EQ(service.pump().size(), 4u);
  EXPECT_EQ(service.pending(), 6u);
  EXPECT_EQ(service.drain().size(), 6u);
  EXPECT_EQ(service.stats().epochs, 3u);
  EXPECT_EQ(service.pump().size(), 0u);  // empty queue: no epoch
  EXPECT_EQ(service.stats().epochs, 3u);
}

TEST(ServiceBasics, MutationsValidateLikeDocumented) {
  svc::Service service(small_config());
  const auto dmax = service.config().delta_bound;
  std::vector<std::uint64_t> ids;
  ids.push_back(service.submit(Op{OpKind::AddEdge, 7, 7}));     // self-loop
  ids.push_back(service.submit(Op{OpKind::AddEdge, 0, 100000}));  // unknown
  ids.push_back(service.submit(Op{OpKind::RemoveVertex, 3, 0}));
  ids.push_back(service.submit(Op{OpKind::QueryColor, 3, 0}));  // now retired
  ids.push_back(service.submit(Op{OpKind::AddVertex, 0, 0}));
  const auto results = service.drain();
  ASSERT_EQ(results.size(), 5u);
  EXPECT_EQ(results[0].status, OpStatus::Rejected);
  EXPECT_EQ(results[1].status, OpStatus::Rejected);
  EXPECT_EQ(results[2].status, OpStatus::Ok);
  // Query liveness is sequential within the epoch: submitted after the
  // remove_vertex, so it must see the retirement.
  EXPECT_EQ(results[3].status, OpStatus::Rejected);
  EXPECT_EQ(results[4].status, OpStatus::Ok);
  EXPECT_EQ(results[4].value, 200u);  // appended at the old n
  EXPECT_FALSE(service.live(3));
  EXPECT_TRUE(service.live(200));
  EXPECT_EQ(service.live_vertices(), 200u);  // -1 retired, +1 added
  (void)dmax;
}

// ---------------------------------------------------------------------------
// Determinism: identical op stream, executor threads 1 / 2 / 8
// ---------------------------------------------------------------------------

TEST(ServiceDeterminism, ResultStreamIdenticalAcrossThreads) {
  const svc::WorkloadSpec ws{.seed = 77, .ops = 3000, .clients = 48};
  std::string base_fp;
  std::string base_stats;
  for (const std::size_t threads : {1u, 2u, 8u}) {
    svc::Service service(small_config(threads));
    svc::Workload gen(service, ws);
    std::vector<OpResult> all;
    std::uint64_t submitted = 0;
    while (submitted < ws.ops) {
      for (std::size_t i = 0; i < ws.clients && submitted < ws.ops; ++i) {
        service.submit(gen.next());
        ++submitted;
      }
      const auto part = service.drain();
      all.insert(all.end(), part.begin(), part.end());
    }
    const std::string fp = fingerprint(all);
    const std::string stats =
        service.stats().to_json(/*include_timing=*/false);
    if (threads == 1) {
      base_fp = fp;
      base_stats = stats;
      EXPECT_EQ(service.stats().rejected, 0u) << "eager mirror drift";
    } else {
      EXPECT_EQ(fp, base_fp) << "threads=" << threads;
      EXPECT_EQ(stats, base_stats) << "threads=" << threads;
    }
  }
}

// ---------------------------------------------------------------------------
// Legality after every epoch under 10k-mutation churn
// ---------------------------------------------------------------------------

TEST(ServiceChurn, LegalAfterEveryEpochAcross10kMutations) {
  auto cfg = small_config();
  cfg.spec = graph::GraphSpec::parse("gnp:400,0.02,13");
  cfg.epoch_batch = 64;
  svc::Service service(cfg);
  // Mutation-heavy mix so 10k mutations happen within ~12k ops.
  svc::WorkloadSpec ws;
  ws.seed = 5;
  ws.ops = 1;  // unused: we drive the loop manually below
  ws.add_edge_ppm = 450'000;
  ws.remove_edge_ppm = 350'000;
  ws.add_vertex_ppm = 30'000;
  ws.remove_vertex_ppm = 50'000;
  svc::Workload gen(service, ws);

  std::uint64_t mutations = 0;
  while (mutations < 10'000) {
    for (std::size_t i = 0; i < cfg.epoch_batch; ++i) service.submit(gen.next());
    for (const OpResult& r : service.drain()) {
      ASSERT_NE(r.status, OpStatus::Rejected)
          << svc::to_string(r.kind) << " op " << r.op_id;
      if (r.kind != OpKind::QueryColor) ++mutations;
    }
    // The published invariant: after every pump the coloring is proper and
    // inside the final palette.
    const auto colors = service.colors();
    ASSERT_TRUE(graph::is_proper_coloring(service.graph(), colors));
    const auto palette = service.coloring_config().final_palette();
    for (const graph::Color c : colors) ASSERT_LT(c, palette);
    ASSERT_EQ(service.stats().legality_violations, 0u);
  }
  EXPECT_GE(service.stats().mutations, 10'000u);
}

// ---------------------------------------------------------------------------
// Adjustment locality versus the full-recolor oracle
// ---------------------------------------------------------------------------

TEST(ServiceLocality, EpochAdjustmentStaysNearTouchedVertices) {
  svc::Service service(small_config());
  const auto before = service.colors();

  // One epoch of 6 edge insertions between far-apart vertices, picked to be
  // absent from the seeded graph and within the degree cap.
  std::vector<std::pair<graph::Vertex, graph::Vertex>> adds;
  const auto dmax = service.config().delta_bound;
  for (graph::Vertex u = 0; adds.size() < 6 && u < 60; u += 10) {
    for (graph::Vertex v = u + 100; v < u + 110; ++v) {
      const auto& g = service.graph();
      if (!g.has_edge(u, v) && g.degree(u) < dmax && g.degree(v) < dmax) {
        adds.emplace_back(u, v);
        break;
      }
    }
  }
  ASSERT_EQ(adds.size(), 6u);
  std::set<graph::Vertex> touched;
  for (const auto& [u, v] : adds) {
    service.submit(Op{OpKind::AddEdge, u, v});
    touched.insert(u);
    touched.insert(v);
  }
  for (const OpResult& r : service.drain()) {
    ASSERT_EQ(r.status, OpStatus::Ok);
  }
  const auto after = service.colors();
  ASSERT_TRUE(graph::is_proper_coloring(service.graph(), after));

  // BFS distance-<=1 ball around the touched vertices (the paper's
  // adjustment radius; see ss_coloring.hpp).
  std::set<graph::Vertex> ball(touched);
  for (const graph::Vertex t : touched) {
    for (const graph::Vertex w : service.graph().neighbors(t)) ball.insert(w);
  }
  std::size_t changed = 0;
  for (graph::Vertex v = 0; v < before.size(); ++v) {
    if (before[v] == after[v]) continue;
    ++changed;
    EXPECT_TRUE(ball.count(v) != 0)
        << "vertex " << v << " changed color outside the adjustment ball";
  }
  EXPECT_LE(changed, touched.size());

  // Full-recolor oracle: recoloring from scratch recomputes every vertex
  // (they all restart from their reset colors), so its adjustment set is the
  // whole graph.  The incremental epoch must beat that by a wide margin.
  const std::size_t oracle_changed = service.graph().n();
  EXPECT_LT(changed * 4, oracle_changed);
}

// ---------------------------------------------------------------------------
// Workload seed reproducibility
// ---------------------------------------------------------------------------

TEST(WorkloadSeed, SameSeedSameStreamDifferentSeedDiverges) {
  svc::Service probe(small_config());
  svc::WorkloadSpec ws{.seed = 21, .ops = 500, .clients = 16};

  auto stream = [&](std::uint64_t seed) {
    svc::Workload gen(probe, svc::WorkloadSpec{.seed = seed, .ops = 500});
    std::string out;
    for (int i = 0; i < 500; ++i) {
      const Op op = gen.next();
      out += std::to_string(static_cast<int>(op.kind)) + ',' +
             std::to_string(op.u) + ',' + std::to_string(op.v) + ';';
    }
    return out;
  };
  EXPECT_EQ(stream(21), stream(21));
  EXPECT_NE(stream(21), stream(22));

  // End-to-end: two services driven by the same seed agree on the full
  // deterministic aggregate.
  svc::Service a(small_config());
  svc::Service b(small_config());
  const auto ra = svc::run_workload(a, ws);
  const auto rb = svc::run_workload(b, ws);
  EXPECT_EQ(ra.rejected, 0u);
  EXPECT_EQ(rb.rejected, 0u);
  EXPECT_EQ(a.stats().to_json(false), b.stats().to_json(false));
}

// ---------------------------------------------------------------------------
// Epoch observability
// ---------------------------------------------------------------------------

TEST(ServiceObs, EveryEpochEmitsStagePairAndPhaseTimings) {
  auto cfg = small_config();
  obs::RingSink ring(4096);
  cfg.run.sink = &ring;
  cfg.run.collect_phase_times = true;
  svc::Service service(cfg);
  for (int i = 0; i < 40; ++i) {
    service.submit(Op{i % 2 == 0 ? OpKind::AddEdge : OpKind::QueryColor,
                      static_cast<graph::Vertex>(i), static_cast<graph::Vertex>(100 + i)});
  }
  (void)service.drain();
  std::size_t starts = 0, ends = 0;
  for (const auto& ev : ring.snapshot()) {
    if (ev.label != nullptr && std::string(ev.label) == "svc.epoch") {
      starts += ev.kind == obs::EventKind::StageStart;
      ends += ev.kind == obs::EventKind::StageEnd;
    }
  }
  EXPECT_EQ(starts, service.stats().epochs);
  EXPECT_EQ(ends, service.stats().epochs);
  // collect_phase_times folded the engine's per-phase timers into report().
  EXPECT_GT(service.report().rounds, 0u);
}

// ---------------------------------------------------------------------------
// Wire protocol
// ---------------------------------------------------------------------------

TEST(Wire, FramesRoundTripAndSplitAcrossReads) {
  const std::string frame = svc::encode_frame("query 7");
  ASSERT_EQ(frame.size(), 4u + 7u + 0u + 0u);  // 4-byte prefix + payload
  std::string buffer;
  std::string payload;
  // Feed the frame one byte at a time: decode only fires on completion.
  for (std::size_t i = 0; i < frame.size(); ++i) {
    buffer += frame[i];
    const bool complete = i + 1 == frame.size();
    EXPECT_EQ(svc::decode_frame(buffer, payload), complete);
  }
  EXPECT_EQ(payload, "query 7");
  EXPECT_TRUE(buffer.empty());
}

TEST(Wire, GarbageFrameMidSessionKeepsServing) {
  // A hostile client declares a frame far above the cap, sends part of its
  // garbage payload, then resumes speaking the protocol.  The daemon's
  // bounded reader must report the bad frame once, discard the declared
  // bytes without buffering them, and pick the session back up.
  svc::Service service(small_config());
  svc::FrameReader reader;
  std::string payload;

  reader.feed(svc::encode_frame("add_edge 0 100"));
  ASSERT_EQ(reader.next(payload), svc::FrameStatus::Ok);
  EXPECT_EQ(svc::handle_command(service, payload), "queued 0");

  const std::uint32_t huge = svc::kMaxFramePayload + 1234;
  std::string garbage;
  for (int i = 0; i < 4; ++i) {
    garbage.push_back(static_cast<char>((huge >> (8 * i)) & 0xff));
  }
  garbage.append(512, '\x7f');
  reader.feed(garbage);
  EXPECT_EQ(reader.next(payload), svc::FrameStatus::TooLarge);
  // Never more than a read chunk in memory, no matter the declared length.
  EXPECT_LT(reader.buffered(), 4096u);

  // The rest of the garbage streams in, split across reads, then a valid
  // command; the reader resynchronizes exactly at the frame boundary.
  std::string rest(huge - 512, '\x7f');
  rest += svc::encode_frame("pump");
  const std::size_t half = rest.size() / 2;
  reader.feed(std::string_view(rest).substr(0, half));
  EXPECT_EQ(reader.next(payload), svc::FrameStatus::Incomplete);
  reader.feed(std::string_view(rest).substr(half));
  ASSERT_EQ(reader.next(payload), svc::FrameStatus::Ok);
  EXPECT_EQ(payload, "pump");
  EXPECT_EQ(svc::handle_command(service, payload), "pumped 1");
  EXPECT_EQ(reader.next(payload), svc::FrameStatus::Incomplete);

  // Session still healthy end to end.
  const std::string q = svc::handle_command(service, "query 0");
  EXPECT_EQ(q.rfind("ok ", 0), 0u);
}

TEST(Wire, CommandsDriveTheService) {
  svc::Service service(small_config());
  EXPECT_EQ(svc::handle_command(service, "add_edge 0 100"), "queued 0");
  EXPECT_EQ(svc::handle_command(service, "pump"), "pumped 1");
  const std::string q = svc::handle_command(service, "query 0");
  EXPECT_EQ(q.rfind("ok ", 0), 0u);
  EXPECT_EQ(svc::handle_command(service, "remove_vertex 5"), "queued 2");
  EXPECT_EQ(svc::handle_command(service, "query 5"), "rej");
  EXPECT_EQ(svc::handle_command(service, "bogus"), "err unknown command");
  EXPECT_EQ(svc::handle_command(service, "add_edge x y"), "err bad vertex");
  EXPECT_TRUE(svc::is_quit("quit"));
  EXPECT_FALSE(svc::is_quit("quitx"));
  const std::string stats = svc::handle_command(service, "stats");
  EXPECT_EQ(stats.front(), '{');
  EXPECT_NE(stats.find("\"legality_violations\":0"), std::string::npos);
}

}  // namespace
