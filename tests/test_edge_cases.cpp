// Degenerate and boundary instances: empty graphs, single edges, Delta in
// {0,1,2}, disconnected graphs, and the less-traveled API paths.
#include <gtest/gtest.h>

#include "agc/coloring/ag.hpp"
#include "agc/coloring/pipeline.hpp"
#include "agc/coloring/reduction.hpp"
#include "agc/edge/edge_coloring.hpp"
#include "agc/graph/generators.hpp"
#include "agc/selfstab/ss_line.hpp"

namespace {

using namespace agc;

TEST(EdgeCases, EmptyAndSingletonGraphs) {
  for (std::size_t n : {0u, 1u, 5u}) {
    const graph::Graph g(n);  // edgeless
    const auto rep = coloring::color_delta_plus_one(g);
    EXPECT_TRUE(rep.converged);
    EXPECT_TRUE(rep.proper);
    EXPECT_LE(rep.palette, 1u);
  }
}

TEST(EdgeCases, SingleEdgeAllPipelines) {
  graph::Graph g(2);
  g.add_edge(0, 1);
  for (const auto& rep :
       {coloring::color_delta_plus_one(g), coloring::color_delta_plus_one_exact(g),
        coloring::color_kuhn_wattenhofer(g), coloring::color_linial_greedy(g)}) {
    EXPECT_TRUE(rep.converged && rep.proper);
    EXPECT_LE(graph::max_color(rep.colors), 1u);  // 2 = Delta+1 colors
  }
}

TEST(EdgeCases, DisjointUnionColorsIndependently) {
  // Two components with very different Delta.
  graph::Graph g(20);
  for (graph::Vertex v = 1; v < 10; ++v) g.add_edge(0, v);  // star, Delta=9
  for (graph::Vertex v = 10; v + 1 < 20; ++v) g.add_edge(v, v + 1);  // path
  const auto rep = coloring::color_delta_plus_one_exact(g);
  EXPECT_TRUE(rep.converged && rep.proper);
  EXPECT_LE(graph::max_color(rep.colors), 9u);
}

TEST(EdgeCases, DeltaOneMatchingGraph) {
  graph::Graph g(6);
  g.add_edge(0, 1);
  g.add_edge(2, 3);
  g.add_edge(4, 5);
  const auto rep = coloring::color_delta_plus_one_exact(g);
  EXPECT_TRUE(rep.converged && rep.proper);
  EXPECT_LE(graph::max_color(rep.colors), 1u);

  const auto ec = edge::color_edges_distributed(g);
  EXPECT_TRUE(ec.converged && ec.proper);
}

TEST(EdgeCases, SelfStabTinyDelta) {
  for (std::size_t delta : {1u, 2u}) {
    const auto g = delta == 1 ? graph::path(2) : graph::cycle(9);
    selfstab::SsConfig cfg(g.n(), delta, selfstab::PaletteMode::ExactDeltaPlusOne);
    runtime::EngineOptions eo;
    eo.delta_bound = delta;
    runtime::Engine engine(g, runtime::Transport(runtime::Model::LOCAL), eo);
    engine.install(selfstab::ss_coloring_factory(cfg));
    const auto rep = selfstab::run_until_stable(engine, cfg, 4000);
    EXPECT_TRUE(rep.stabilized) << "delta=" << delta;
    EXPECT_LE(graph::max_color(rep.colors), delta);
  }
}

TEST(EdgeCases, SsLineODeltaMode) {
  const auto g = graph::random_regular(40, 4, 6);
  selfstab::SsLineConfig cfg(g.n(), 4, selfstab::LineTask::EdgeColoring,
                             selfstab::PaletteMode::ODelta);
  runtime::EngineOptions eo;
  eo.delta_bound = 4;
  runtime::Engine engine(g, runtime::Transport(runtime::Model::LOCAL), eo);
  engine.install(selfstab::ss_line_factory(cfg));
  const auto rep = selfstab::run_until_line_stable(engine, cfg, 40000);
  EXPECT_TRUE(rep.stabilized);
  EXPECT_TRUE(graph::is_proper_edge_coloring(
      g, selfstab::current_edge_colors(engine)));
}

TEST(EdgeCases, RunStagesComposesRules) {
  const auto g = graph::random_regular(120, 6, 3);
  auto lin = coloring::linial_color(g, coloring::identity_coloring(g.n()), g.n(), 6);
  const std::uint64_t q = coloring::ag_modulus(6, graph::max_color(lin.colors) + 1);
  coloring::AgRule ag(q);
  coloring::GreedyReduceRule reduce(7, q);
  const runtime::IterativeRule* stages[] = {&ag, &reduce};
  auto res = runtime::run_stages(g, std::move(lin.colors), stages);
  EXPECT_TRUE(res.converged);
  EXPECT_TRUE(res.proper_each_round);
  EXPECT_LT(graph::max_color(res.colors), 7u);
}

TEST(EdgeCases, ReductionAlreadyBelowTarget) {
  const auto g = graph::path(10);
  std::vector<graph::Color> alternating(10);
  for (std::size_t v = 0; v < 10; ++v) alternating[v] = v % 2;
  auto res = coloring::reduce_colors(g, alternating, 5);
  EXPECT_TRUE(res.converged);
  EXPECT_EQ(res.rounds, 0u);
  EXPECT_EQ(res.colors, alternating);
}

TEST(EdgeCases, AgModulusOnTinyInputs) {
  EXPECT_GE(coloring::ag_modulus(0, 1), 2u);
  EXPECT_GT(coloring::ag_modulus(1, 4), 2u);
  const auto q = coloring::ag_modulus(1, 1000);  // palette dominates
  EXPECT_GE(q * q, 1000u);
}

}  // namespace
