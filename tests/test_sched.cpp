// The campaign scheduler (src/sched): GraphSpec canonicalization and content
// hashing, campaign parse/format round-trips, two-level scheduling with the
// graph cache and memory backpressure, watchdog retries, and the determinism
// contract — aggregate JSONL bit-identical across 1/2/8 workers (this binary
// also runs under TSan in CI).
#include <gtest/gtest.h>

#include <cstdio>
#include <sstream>
#include <stdexcept>
#include <string>

#include "agc/graph/checks.hpp"
#include "agc/graph/generators.hpp"
#include "agc/graph/spec.hpp"
#include "agc/obs/event_sink.hpp"
#include "agc/sched/campaign.hpp"

namespace {

using namespace agc;
using graph::GraphSpec;
using sched::Campaign;
using sched::CampaignReport;
using sched::JobSpec;
using sched::ScheduleOptions;

// ---------------------------------------------------------------------------
// GraphSpec
// ---------------------------------------------------------------------------

TEST(GraphSpec, CanonicalizesPositionalAndNamedForms) {
  const auto positional = GraphSpec::parse("regular:1500,8,1242");
  const auto named = GraphSpec::parse("regular:seed=1242,n=1500,d=8");
  EXPECT_EQ(positional.to_string(), "regular:n=1500,d=8,seed=1242");
  EXPECT_EQ(positional.to_string(), named.to_string());
  EXPECT_EQ(positional.content_hash(), named.content_hash());
  EXPECT_TRUE(positional == named);
}

TEST(GraphSpec, RoundTripsThroughToString) {
  for (const char* s :
       {"gnp:n=1000,p=0.01,seed=7", "cycle:n=64", "grid:rows=8,cols=10",
        "geometric:n=200,radius=0.125,seed=3", "hypercube:d=5",
        "bounded:n=600,dmax=10,m=2200,seed=42"}) {
    const auto spec = GraphSpec::parse(s);
    EXPECT_EQ(spec.to_string(), s);
    const auto reparsed = GraphSpec::parse(spec.to_string());
    EXPECT_EQ(reparsed.content_hash(), spec.content_hash());
  }
}

TEST(GraphSpec, BuildMatchesDirectGenerators) {
  const auto g1 = GraphSpec::parse("regular:n=300,d=6,seed=9").build();
  const auto g2 = graph::random_regular(300, 6, 9);
  ASSERT_EQ(g1.n(), g2.n());
  ASSERT_EQ(g1.m(), g2.m());
  for (graph::Vertex v = 0; v < g1.n(); ++v) {
    const auto a = g1.neighbors(v);
    const auto b = g2.neighbors(v);
    ASSERT_EQ(std::vector(a.begin(), a.end()), std::vector(b.begin(), b.end()));
  }
}

TEST(GraphSpec, DistinctSpecsHashDifferently) {
  EXPECT_NE(GraphSpec::parse("cycle:64").content_hash(),
            GraphSpec::parse("cycle:65").content_hash());
  EXPECT_NE(GraphSpec::parse("cycle:64").content_hash(),
            GraphSpec::parse("path:64").content_hash());
}

TEST(GraphSpec, RejectsMalformedSpecs) {
  EXPECT_THROW(GraphSpec::parse("nosuchkind:5"), std::invalid_argument);
  EXPECT_THROW(GraphSpec::parse("regular:n=10"), std::invalid_argument);
  EXPECT_THROW(GraphSpec::parse("cycle:n=10,extra=1"), std::invalid_argument);
  EXPECT_THROW(GraphSpec::parse("cycle:n=10,n=11"), std::invalid_argument);
  EXPECT_THROW(GraphSpec::parse("cycle"), std::invalid_argument);
}

TEST(GraphSpec, EstimatedBytesScalesWithSize) {
  const auto small = GraphSpec::parse("cycle:64").estimated_bytes();
  const auto big = GraphSpec::parse("cycle:100000").estimated_bytes();
  EXPECT_GT(small, 0u);
  EXPECT_GT(big, 100 * small);
}

// ---------------------------------------------------------------------------
// Campaign file format
// ---------------------------------------------------------------------------

TEST(CampaignFormat, ParsesJobsWithDefaultsAndComments) {
  std::istringstream in(
      "# a comment\n"
      "algo=ag graph=cycle:64\n"
      "\n"
      "algo=exact graph=gnp:100,0.06,2 seed=5 tag=cell-b max-rounds=500\n");
  const auto c = Campaign::parse(in);
  ASSERT_EQ(c.size(), 2u);
  EXPECT_EQ(c.job(0).algorithm, "ag");
  EXPECT_EQ(c.job(0).graph.to_string(), "cycle:n=64");
  EXPECT_EQ(c.job(0).seed, 1u);
  EXPECT_EQ(c.job(1).tag, "cell-b");
  EXPECT_EQ(c.job(1).seed, 5u);
  EXPECT_EQ(c.job(1).opts.max_rounds, 500u);
}

TEST(CampaignFormat, FormatParseRoundTrip) {
  Campaign c;
  c.add_grid({"ag", "kw"}, {GraphSpec::parse("cycle:64"),
                            GraphSpec::parse("regular:100,6,3")},
             {1, 2});
  JobSpec faulty;
  faulty.algorithm = "ss-color";
  faulty.graph = GraphSpec::parse("regular:100,6,3");
  faulty.seed = 9;
  faulty.faults.channel.drop_per_million = 20'000;
  faulty.faults.channel.last_round = 24;
  faulty.faults.periodic = {.period = 6, .last_round = 24, .corrupt = 2};
  faulty.faults.recovery_budget = 4000;
  c.add(faulty);

  std::istringstream in(c.format());
  const auto back = Campaign::parse(in);
  EXPECT_EQ(back.format(), c.format());
  ASSERT_EQ(back.size(), c.size());
  EXPECT_EQ(back.job(8).faults.channel.drop_per_million, 20'000u);
  EXPECT_EQ(back.job(8).faults.periodic.corrupt, 2u);
  EXPECT_EQ(back.job(8).faults.recovery_budget, 4000u);
}

TEST(CampaignFormat, RejectsUnknownRunnerAndBadDeps) {
  std::istringstream bad_algo("algo=nosuch graph=cycle:64\n");
  EXPECT_THROW(Campaign::parse(bad_algo), std::invalid_argument);
  std::istringstream fwd_dep("algo=ag graph=cycle:64 deps=1\n");
  EXPECT_THROW(Campaign::parse(fwd_dep), std::invalid_argument);
}

TEST(CampaignFormat, AddGridOrdersAlgorithmMajor) {
  Campaign c;
  c.add_grid({"ag", "exact"}, {GraphSpec::parse("cycle:8")}, {1, 2});
  ASSERT_EQ(c.size(), 4u);
  EXPECT_EQ(c.job(0).algorithm, "ag");
  EXPECT_EQ(c.job(1).algorithm, "ag");
  EXPECT_EQ(c.job(1).seed, 2u);
  EXPECT_EQ(c.job(2).algorithm, "exact");
}

// ---------------------------------------------------------------------------
// Scheduling: determinism, cache, backpressure, deps, retries
// ---------------------------------------------------------------------------

Campaign small_campaign() {
  Campaign c;
  c.add_grid({"ag", "exact", "gps"},
             {GraphSpec::parse("cycle:64"), GraphSpec::parse("gnp:100,0.06,2"),
              GraphSpec::parse("regular:100,6,3")},
             {1, 2});
  return c;
}

TEST(Scheduler, AggregatesBitIdenticalAcross128Threads) {
  const auto c = small_campaign();
  std::string jsonl[3];
  std::size_t i = 0;
  for (const std::size_t threads : {1, 2, 8}) {
    ScheduleOptions so;
    so.threads = threads;
    jsonl[i++] = sched::run_campaign(c, so).to_jsonl();
  }
  EXPECT_EQ(jsonl[0], jsonl[1]);
  EXPECT_EQ(jsonl[0], jsonl[2]);
  EXPECT_NE(jsonl[0].find("\"campaign\""), std::string::npos);
}

TEST(Scheduler, CacheAccountingIsExact) {
  const auto c = small_campaign();  // 18 jobs over 3 distinct graphs
  ScheduleOptions so;
  so.threads = 4;
  const auto report = sched::run_campaign(c, so);
  EXPECT_EQ(report.cache_misses, 3u);
  EXPECT_EQ(report.cache_hits, c.size() - 3);
  // Exactly the first job touching each distinct spec is a miss, regardless
  // of execution order.
  std::size_t misses = 0;
  for (const auto& job : report.jobs) misses += job.cache_hit ? 0 : 1;
  EXPECT_EQ(misses, 3u);
  EXPECT_FALSE(report.jobs[0].cache_hit);
}

TEST(Scheduler, TinyMemoryBudgetStillCompletes) {
  const auto c = small_campaign();
  ScheduleOptions so;
  so.threads = 8;
  so.memory_budget_bytes = 1;  // admits one job at a time: degrade, not deadlock
  const auto report = sched::run_campaign(c, so);
  EXPECT_TRUE(report.all_ok());
  EXPECT_GT(report.peak_bytes_in_flight, 0u);
  // With admission gated at one in-flight graph, the peak never exceeds the
  // largest single estimate.
  std::size_t largest = 0;
  for (std::size_t j = 0; j < c.size(); ++j) {
    largest = std::max(largest, c.job(j).graph.estimated_bytes());
  }
  EXPECT_LE(report.peak_bytes_in_flight, largest);

  ScheduleOptions unlimited;
  unlimited.threads = 8;
  const auto free_report = sched::run_campaign(c, unlimited);
  EXPECT_EQ(free_report.to_jsonl(), report.to_jsonl());
}

TEST(Scheduler, DependenciesRunBeforeDependents) {
  Campaign c;
  JobSpec a;
  a.algorithm = "ag";
  a.graph = GraphSpec::parse("cycle:64");
  c.add(a);
  JobSpec b = a;
  b.algorithm = "exact";
  b.deps = {0};
  c.add(b);
  ScheduleOptions so;
  so.threads = 2;
  const auto report = sched::run_campaign(c, so);
  EXPECT_TRUE(report.all_ok());

  Campaign cyclic;
  JobSpec self = a;
  cyclic.add(self);
  EXPECT_THROW(cyclic.depend(0, 0), std::invalid_argument);
}

TEST(Scheduler, WatchdogRetriesWithRerolledSeeds) {
  // An impossible recovery budget forces the watchdog on every attempt: the
  // scheduler must exhaust max_attempts and report the violation.
  Campaign c;
  JobSpec job;
  job.algorithm = "ss-color";
  job.graph = GraphSpec::parse("regular:100,6,3");
  job.seed = 5;
  job.faults.periodic = {.period = 1, .last_round = 1'000'000, .corrupt = 4};
  job.faults.recovery_budget = 3;
  job.opts.max_rounds = 50;
  c.add(job);
  ScheduleOptions so;
  so.max_attempts = 3;
  const auto report = sched::run_campaign(c, so);
  EXPECT_FALSE(report.all_ok());
  EXPECT_EQ(report.jobs[0].attempts, 3u);
  EXPECT_EQ(report.retries, 2u);
  EXPECT_TRUE(report.jobs[0].watchdog);
  EXPECT_FALSE(report.jobs[0].error.empty());
}

TEST(Scheduler, AttemptSeedIsStableAndDistinct) {
  EXPECT_EQ(sched::attempt_seed(42, 0), 42u);
  EXPECT_EQ(sched::attempt_seed(42, 1), 42u);
  EXPECT_NE(sched::attempt_seed(42, 2), 42u);
  EXPECT_NE(sched::attempt_seed(42, 2), sched::attempt_seed(42, 3));
  EXPECT_EQ(sched::attempt_seed(42, 2), sched::attempt_seed(42, 2));
}

TEST(Scheduler, FaultCampaignDeterministicAcrossThreads) {
  Campaign c;
  for (const std::uint64_t seed : {1, 2, 3, 4}) {
    JobSpec job;
    job.algorithm = "ss-color";
    job.graph = GraphSpec::parse("regular:100,6,3");
    job.seed = seed;
    job.faults.channel.drop_per_million = 20'000;
    job.faults.channel.first_round = 1;
    job.faults.channel.last_round = 24;
    job.faults.recovery_budget = 4000;
    c.add(std::move(job));
  }
  ScheduleOptions so1, so8;
  so1.threads = 1;
  so8.threads = 8;
  const auto r1 = sched::run_campaign(c, so1);
  const auto r8 = sched::run_campaign(c, so8);
  EXPECT_EQ(r1.to_jsonl(), r8.to_jsonl());
  EXPECT_TRUE(r1.all_ok());
  // Different job seeds draw different fault streams.
  EXPECT_NE(r1.jobs[0].fault_events, 0u);
}

TEST(Scheduler, SinkReceivesJobIdOrderedEvents) {
  const auto c = small_campaign();
  obs::RingSink ring(64);
  ScheduleOptions so;
  so.threads = 4;
  so.sink = &ring;
  const auto report = sched::run_campaign(c, so);
  ASSERT_TRUE(report.all_ok());
  // RunStart + one StageEnd per job + RunEnd, emitted after completion in
  // job-id order regardless of which worker finished first.
  const auto events = ring.snapshot();
  ASSERT_EQ(events.size(), c.size() + 2);
  EXPECT_EQ(events.front().kind, obs::EventKind::RunStart);
  EXPECT_EQ(events.back().kind, obs::EventKind::RunEnd);
  for (std::size_t j = 0; j < c.size(); ++j) {
    EXPECT_EQ(events[j + 1].kind, obs::EventKind::StageEnd);
    EXPECT_EQ(events[j + 1].round, report.jobs[j].rounds);
  }
}

TEST(Scheduler, TimingExcludedFromJsonlByDefault) {
  Campaign c;
  JobSpec job;
  job.algorithm = "ag";
  job.graph = GraphSpec::parse("cycle:64");
  c.add(job);
  ScheduleOptions so;
  const auto report = sched::run_campaign(c, so);
  EXPECT_EQ(report.to_jsonl().find("wall_ns"), std::string::npos);
  EXPECT_NE(report.to_jsonl(true).find("wall_ns"), std::string::npos);
}

}  // namespace
