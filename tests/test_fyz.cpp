// Fu-Yin-Zheng sublinear-in-Delta coloring (coloring::fyz) and the
// AlgoRegistry it is published through: round-bound sweep against the
// O(Delta^{3/4} log Delta + log* n) shape, properness / palette / strict
// locally-iterative invariant on both graph backends, bit-identity across
// thread counts, and the registry lookup surface every front end dispatches
// through.
#include <gtest/gtest.h>

#include <cmath>
#include <string>

#include "agc/coloring/fyz.hpp"
#include "agc/coloring/pipeline.hpp"
#include "agc/coloring/registry.hpp"
#include "agc/exec/executor.hpp"
#include "agc/graph/checks.hpp"
#include "agc/graph/frozen.hpp"
#include "agc/graph/generators.hpp"

namespace {

using namespace agc;
using coloring::Color;

std::size_t iterated_log(std::size_t n) {
  std::size_t k = 0;
  double x = static_cast<double>(n);
  while (x > 1.0) {
    x = std::log2(x);
    ++k;
  }
  return k;
}

// The sweep's acceptance envelope: rounds <= C * Delta^{3/4} * log2(Delta+2)
// + log* n + c.  C and c are calibrated against the measured trajectory
// (10..20 rounds over Delta = 4..256 on n=1500 regular graphs) with head
// room, but tight enough that anything Theta(Delta) blows through it by
// Delta = 256: linear growth at even 0.5 * Delta would need 128 rounds where
// the envelope allows ~46.
std::size_t fyz_round_envelope(std::size_t delta, std::size_t n) {
  const double d = static_cast<double>(delta);
  return static_cast<std::size_t>(
             0.6 * std::pow(d, 0.75) * std::log2(d + 2.0)) +
         iterated_log(n) + 8;
}

TEST(FyzBudget, FourthRootShape) {
  EXPECT_EQ(coloring::fyz_budget(0), 1u);
  EXPECT_EQ(coloring::fyz_budget(1), 1u);
  EXPECT_EQ(coloring::fyz_budget(16), 2u);
  EXPECT_EQ(coloring::fyz_budget(256), 4u);
  // Monotone non-decreasing, and genuinely sublinear.
  std::uint64_t prev = 0;
  for (std::size_t delta = 1; delta <= 512; ++delta) {
    const std::uint64_t p = coloring::fyz_budget(delta);
    EXPECT_GE(p, prev);
    EXPECT_LE(p * p * p * p, 16 * delta) << "delta=" << delta;
    prev = p;
  }
}

TEST(Fyz, ProperPaletteAndInvariantAcrossDeltaSweep) {
  for (std::size_t delta : {4u, 8u, 16u, 32u, 64u, 128u}) {
    const auto g = graph::random_regular(600, delta, 77 + delta);
    const auto rep = coloring::color_fyz(g);
    const std::size_t dmax = g.max_degree();
    ASSERT_TRUE(rep.converged) << "delta=" << delta;
    EXPECT_TRUE(rep.proper);
    EXPECT_TRUE(graph::is_proper_coloring(g, rep.colors));
    // Palette bound: every final color is < Delta+1.
    for (const Color c : rep.colors) EXPECT_LE(c, dmax);
    // The strict Szegedy-Vishwanathan invariant: every intermediate packed
    // coloring was proper (the carrier trick, checked live by the harness).
    EXPECT_TRUE(rep.proper_each_round) << "delta=" << delta;
    EXPECT_LE(rep.rounds, fyz_round_envelope(dmax, g.n())) << "delta=" << delta;
    EXPECT_EQ(rep.rounds, rep.rounds_linial + rep.rounds_core + rep.rounds_finish);
  }
}

TEST(Fyz, SublinearBeatsAgAtHighDelta) {
  // The headline separation: at Delta = 256 FYZ must finish in strictly
  // fewer rounds than the paper's O(Delta) pipeline — by a wide margin
  // (measured: ~20 vs ~165).
  const auto g = graph::random_regular(1500, 256, 1490);
  const auto fyz = coloring::color_fyz(g);
  const auto ag = coloring::color_delta_plus_one(g);
  ASSERT_TRUE(fyz.converged);
  ASSERT_TRUE(ag.converged);
  EXPECT_LT(fyz.rounds * 3, ag.rounds);
}

TEST(Fyz, BitIdenticalAcrossThreadCounts) {
  const auto g = graph::random_regular(900, 48, 405);
  const auto base = coloring::color_fyz(g);
  ASSERT_TRUE(base.converged);
  for (std::size_t threads : {1u, 2u, 8u}) {
    coloring::PipelineOptions opts;
    opts.run().executor = exec::make_executor(threads);
    const auto par = coloring::color_fyz(g, opts);
    EXPECT_EQ(par.colors, base.colors) << "threads=" << threads;
    EXPECT_EQ(par.rounds, base.rounds) << "threads=" << threads;
    EXPECT_EQ(par.rounds_linial, base.rounds_linial);
    EXPECT_EQ(par.rounds_core, base.rounds_core);
    EXPECT_EQ(par.rounds_finish, base.rounds_finish);
  }
}

TEST(Fyz, FrozenBackendMatchesDynamicBackend) {
  const auto g = graph::random_regular(700, 24, 91);
  const auto frozen = graph::FrozenGraph::from_graph(g);
  const auto dyn = coloring::color_fyz(g);
  const auto frz = coloring::color_fyz(frozen);
  ASSERT_TRUE(dyn.converged);
  ASSERT_TRUE(frz.converged);
  EXPECT_EQ(dyn.colors, frz.colors);
  EXPECT_EQ(dyn.rounds, frz.rounds);
  EXPECT_TRUE(graph::is_proper_coloring(frozen, frz.colors));
}

TEST(Fyz, TrivialGraphs) {
  {
    graph::Graph g(1);  // single isolated vertex
    const auto rep = coloring::color_fyz(g);
    ASSERT_TRUE(rep.converged);
    EXPECT_EQ(rep.colors.size(), 1u);
    EXPECT_EQ(rep.colors[0], 0u);
  }
  {
    graph::Graph g(2);  // one edge: palette {0, 1}
    g.add_edge(0, 1);
    const auto rep = coloring::color_fyz(g);
    ASSERT_TRUE(rep.converged);
    EXPECT_TRUE(graph::is_proper_coloring(g, rep.colors));
    EXPECT_LE(rep.colors[0], 1u);
    EXPECT_LE(rep.colors[1], 1u);
  }
  {
    graph::Graph g(16);  // empty graph, Delta = 0
    const auto rep = coloring::color_fyz(g);
    ASSERT_TRUE(rep.converged);
    for (const Color c : rep.colors) EXPECT_EQ(c, 0u);
  }
}

// ---------------------------------------------------------------------------
// AlgoRegistry — the unified surface agccli / sched / bench dispatch through.
// ---------------------------------------------------------------------------

TEST(AlgoRegistry, FindsEveryPublishedAlgorithm) {
  ASSERT_GE(coloring::algos().size(), 9u);
  for (const auto& a : coloring::algos()) {
    const auto* found = coloring::find_algo(a.name);
    ASSERT_NE(found, nullptr) << a.name;
    EXPECT_EQ(found, &a);
    EXPECT_NE(a.run, nullptr);
    EXPECT_NE(a.palette_bound, nullptr);
    EXPECT_NE(a.family, nullptr);
  }
  EXPECT_EQ(coloring::find_algo("nope"), nullptr);
  EXPECT_EQ(coloring::find_algo(""), nullptr);
}

TEST(AlgoRegistry, ListNamesEveryEntryOnce) {
  const std::string list = coloring::algo_list();
  for (const auto& a : coloring::algos()) {
    EXPECT_NE(list.find(a.name), std::string::npos) << a.name;
  }
}

TEST(AlgoRegistry, PaletteBoundsMatchFamilies) {
  const coloring::PipelineOptions opts;
  for (const char* name : {"gps", "kw", "ag", "exact", "fyz", "luby"}) {
    const auto* a = coloring::find_algo(name);
    ASSERT_NE(a, nullptr) << name;
    EXPECT_EQ(a->palette_bound(64, opts), 65u) << name;
  }
  // The O(Delta) stop-early entry keeps the AG palette: a prime > 2*Delta.
  const auto* odelta = coloring::find_algo("odelta");
  ASSERT_NE(odelta, nullptr);
  EXPECT_GT(odelta->palette_bound(64, opts), 128u);
  // Only the randomized entry demands a seed.
  for (const auto& a : coloring::algos()) {
    EXPECT_EQ(a.requires_seed, std::string(a.name) == "luby") << a.name;
  }
}

TEST(AlgoRegistry, RunDispatchMatchesDirectCall) {
  const auto g = graph::random_regular(400, 12, 19);
  const auto* a = coloring::find_algo("fyz");
  ASSERT_NE(a, nullptr);
  coloring::PipelineOptions opts;
  const auto via_registry = a->run(g, opts);
  const auto direct = coloring::color_fyz(g, opts);
  EXPECT_EQ(via_registry.colors, direct.colors);
  EXPECT_EQ(via_registry.rounds, direct.rounds);
}

}  // namespace
