// The observability subsystem: phase timers and their deterministic fold,
// event sinks (ring wraparound, JSONL escaping), the telemetry registry, and
// the golden-run guarantee that turning observability on changes NOTHING
// about a run's algorithmic output — same colors, same Metrics — at any
// thread count.  Plus the RunOptions fault-adversary hook: deterministic
// under a fixed seed, quiescent after last_round.
#include <gtest/gtest.h>

#include <sstream>

#include "agc/coloring/pipeline.hpp"
#include "agc/exec/executor.hpp"
#include "agc/graph/checks.hpp"
#include "agc/graph/generators.hpp"
#include "agc/obs/event_sink.hpp"
#include "agc/obs/telemetry.hpp"
#include "agc/runtime/faults.hpp"
#include "agc/runtime/iterative.hpp"
#include "agc/selfstab/ss_coloring.hpp"

namespace {

using namespace agc;

// ---------------------------------------------------------------------------
// Phase timers.
// ---------------------------------------------------------------------------

TEST(PhaseTimer, FoldIsDeterministicAndOrderIndependentForSums) {
  obs::PhaseProfile profile;
  profile.ensure_shards(4);
  for (std::size_t s = 0; s < 4; ++s) {
    profile.shard(s)->add(obs::Phase::Send, 100 * (s + 1));
    profile.shard(s)->add(obs::Phase::Receive, 10 * (s + 1));
  }
  profile.extra()->add(obs::Phase::Check, 7);

  const obs::PhaseStats folded = profile.folded();
  EXPECT_EQ(folded.phase_ns(obs::Phase::Send), 100u + 200u + 300u + 400u);
  EXPECT_EQ(folded.phase_calls(obs::Phase::Send), 4u);
  EXPECT_EQ(folded.phase_ns(obs::Phase::Receive), 10u + 20u + 30u + 40u);
  EXPECT_EQ(folded.phase_ns(obs::Phase::Check), 7u);
  EXPECT_EQ(folded.total_ns(), 1000u + 100u + 7u);

  // Folding twice gives the identical result (pure function of the shards).
  const obs::PhaseStats again = profile.folded();
  EXPECT_EQ(folded.ns, again.ns);
  EXPECT_EQ(folded.calls, again.calls);

  profile.reset();
  EXPECT_TRUE(profile.folded().empty());
}

TEST(PhaseTimer, NullStatsDisablesTheTimer) {
  obs::PhaseStats stats;
  { obs::ScopedPhaseTimer off(nullptr, obs::Phase::Send); }
  EXPECT_TRUE(stats.empty());
  { obs::ScopedPhaseTimer on(&stats, obs::Phase::Send); }
  EXPECT_EQ(stats.phase_calls(obs::Phase::Send), 1u);
}

TEST(PhaseTimer, EnsureShardsNeverShrinks) {
  obs::PhaseProfile profile;
  profile.ensure_shards(8);
  profile.shard(7)->add(obs::Phase::Deliver, 42);
  profile.ensure_shards(2);  // no-op
  EXPECT_EQ(profile.shard_count(), 8u);
  EXPECT_EQ(profile.folded().phase_ns(obs::Phase::Deliver), 42u);
}

// ---------------------------------------------------------------------------
// Event sinks.
// ---------------------------------------------------------------------------

TEST(EventSink, RingKeepsNewestEventsOldestFirst) {
  obs::RingSink ring(4);
  for (std::uint64_t i = 0; i < 10; ++i) {
    obs::Event ev;
    ev.kind = obs::EventKind::RoundEnd;
    ev.round = i;
    ring.emit(ev);
  }
  EXPECT_EQ(ring.seen(), 10u);
  EXPECT_EQ(ring.capacity(), 4u);
  const auto events = ring.snapshot();
  ASSERT_EQ(events.size(), 4u);
  for (std::size_t i = 0; i < 4; ++i) EXPECT_EQ(events[i].round, 6u + i);
}

TEST(EventSink, JsonEscaping) {
  std::string out;
  obs::json_escape("plain", out);
  EXPECT_EQ(out, "plain");

  out.clear();
  obs::json_escape("a\"b\\c\nd\te\x01", out);
  EXPECT_EQ(out, "a\\\"b\\\\c\\nd\\te\\u0001");

  out.clear();
  obs::json_escape("caf\xc3\xa9", out);  // UTF-8 passes through
  EXPECT_EQ(out, "caf\xc3\xa9");
}

TEST(EventSink, JsonlLinesAreWellFormed) {
  std::ostringstream os;
  obs::JsonlSink sink(os);

  obs::Event ev;
  ev.kind = obs::EventKind::RunStart;
  ev.label = "tag \"quoted\"";
  ev.value = 12;
  sink.emit(ev);

  ev = obs::Event{};
  ev.kind = obs::EventKind::RoundEnd;
  ev.round = 3;
  ev.ns = 99;
  sink.emit(ev);

  EXPECT_EQ(sink.lines(), 2u);
  EXPECT_EQ(os.str(),
            "{\"kind\":\"run_start\",\"round\":0,"
            "\"label\":\"tag \\\"quoted\\\"\",\"value\":12,\"ns\":0}\n"
            "{\"kind\":\"round_end\",\"round\":3,\"value\":0,\"ns\":99}\n");
}

// ---------------------------------------------------------------------------
// Telemetry registry.
// ---------------------------------------------------------------------------

TEST(Telemetry, CountersSetGetOverwrite) {
  obs::Telemetry t;
  t.set("messages", 100);
  t.set("rounds", 7);
  t.set("messages", 200);  // overwrite, not append
  EXPECT_EQ(t.get("messages"), 200u);
  EXPECT_EQ(t.get("rounds"), 7u);
  EXPECT_EQ(t.get("missing", 5), 5u);
  EXPECT_EQ(t.counters().size(), 2u);

  t.wall_ns = 2'000'000'000;  // 2 s
  EXPECT_DOUBLE_EQ(t.rounds_per_sec(), 3.5);

  const std::string json = t.to_json();
  EXPECT_NE(json.find("\"messages\":200"), std::string::npos);
  EXPECT_NE(json.find("\"phases\""), std::string::npos);
}

TEST(Telemetry, RunReportExportsUnifiedRegistry) {
  const auto g = graph::random_regular(200, 8, 3);
  coloring::PipelineOptions opts;
  opts.iter.collect_phase_times = true;
  const auto rep = coloring::color_delta_plus_one(g, opts);
  ASSERT_TRUE(rep.proper);

  const obs::Telemetry t = rep.telemetry();
  EXPECT_EQ(t.get("rounds"), rep.rounds);
  EXPECT_EQ(t.get("messages"), rep.metrics.messages);
  EXPECT_EQ(t.get("total_bits"), rep.metrics.total_bits);
  EXPECT_EQ(t.get("max_edge_bits"), rep.metrics.max_edge_bits);
  EXPECT_GT(t.phases.total_ns(), 0u);
  EXPECT_GT(t.rounds_per_sec(), 0.0);
}

// ---------------------------------------------------------------------------
// Golden runs: observability must not change algorithmic output.
// ---------------------------------------------------------------------------

TEST(GoldenObservability, TelemetryOnMatchesNullSinkAtEveryThreadCount) {
  const auto g = graph::random_gnp(600, 0.02, 11);

  coloring::PipelineOptions plain;  // no sink, no phase times
  const auto want = coloring::color_delta_plus_one(g, plain);
  ASSERT_TRUE(want.proper);

  for (const std::size_t threads : {1, 2, 8}) {
    obs::RingSink ring(4096);
    coloring::PipelineOptions observed;
    observed.iter.executor = exec::make_executor(threads);
    observed.iter.sink = &ring;
    observed.iter.collect_phase_times = true;
    const auto got = coloring::color_delta_plus_one(g, observed);

    EXPECT_EQ(got.colors, want.colors) << "threads=" << threads;
    EXPECT_EQ(got.rounds, want.rounds) << "threads=" << threads;
    EXPECT_EQ(got.palette, want.palette) << "threads=" << threads;
    EXPECT_EQ(got.metrics.messages, want.metrics.messages);
    EXPECT_EQ(got.metrics.total_bits, want.metrics.total_bits);
    EXPECT_EQ(got.metrics.max_edge_bits, want.metrics.max_edge_bits);
    EXPECT_GT(ring.seen(), 0u);
    EXPECT_GT(got.phases.total_ns(), 0u);
  }
}

// ---------------------------------------------------------------------------
// RunReport composition.
// ---------------------------------------------------------------------------

TEST(RunReport, AbsorbAddsCountersAndAndsConvergence) {
  runtime::RunReport total;
  total.converged = true;

  runtime::RunReport a;
  a.rounds = 3;
  a.converged = true;
  a.metrics.messages = 10;
  a.metrics.max_edge_bits = 8;
  a.wall_ns = 100;
  a.fault_events = 1;

  runtime::RunReport b;
  b.rounds = 4;
  b.converged = false;
  b.metrics.messages = 5;
  b.metrics.max_edge_bits = 6;
  b.wall_ns = 50;

  total.absorb(a);
  EXPECT_TRUE(total.converged);
  total.absorb(b);
  EXPECT_FALSE(total.converged);
  EXPECT_EQ(total.rounds, 7u);
  EXPECT_EQ(total.metrics.messages, 15u);
  EXPECT_EQ(total.metrics.max_edge_bits, 8u);  // max, not sum
  EXPECT_EQ(total.wall_ns, 150u);
  EXPECT_EQ(total.fault_events, 1u);
}

// ---------------------------------------------------------------------------
// Fault adversary through RunOptions.
// ---------------------------------------------------------------------------

TEST(FaultAdversary, PeriodicIsDeterministicUnderAFixedSeed) {
  const auto g = graph::random_regular(300, 8, 21);
  const std::size_t delta = g.max_degree();
  selfstab::SsConfig cfg(g.n(), delta, selfstab::PaletteMode::ExactDeltaPlusOne);

  auto run_once = [&] {
    runtime::EngineOptions eo;
    eo.delta_bound = delta;
    runtime::Engine engine(g, runtime::Transport(runtime::Model::LOCAL), eo);
    engine.install(selfstab::ss_coloring_factory(cfg));

    runtime::PeriodicAdversary::Schedule sched;
    sched.period = 5;
    sched.last_round = 40;
    sched.corrupt = 4;
    sched.value_range = cfg.span();
    sched.clones = 2;
    runtime::PeriodicAdversary adv(123, sched);

    runtime::RunOptions opts;
    opts.max_rounds = 100000;
    opts.adversary = &adv;
    const auto rep = selfstab::run_until_stable(engine, cfg, opts);
    EXPECT_TRUE(rep.stabilized);
    EXPECT_GT(rep.fault_events, 0u);
    return std::pair{rep.colors, rep.fault_events};
  };

  const auto first = run_once();
  const auto second = run_once();
  EXPECT_EQ(first.first, second.first);
  EXPECT_EQ(first.second, second.second);
}

TEST(FaultAdversary, QuiescesAfterLastRound) {
  const auto g = graph::cycle(64);
  runtime::EngineOptions eo;
  eo.delta_bound = 2;
  selfstab::SsConfig cfg(g.n(), 2, selfstab::PaletteMode::ExactDeltaPlusOne);
  runtime::Engine engine(g, runtime::Transport(runtime::Model::LOCAL), eo);
  engine.install(selfstab::ss_coloring_factory(cfg));

  runtime::PeriodicAdversary::Schedule sched;
  sched.period = 1;  // every round ...
  sched.last_round = 10;  // ... but only until round 10
  sched.corrupt = 1;
  sched.value_range = cfg.span();
  runtime::PeriodicAdversary adv(7, sched);
  const std::size_t events_before = adv.total_events();

  runtime::RunOptions opts;
  opts.max_rounds = 100000;
  opts.adversary = &adv;
  const auto rep = selfstab::run_until_stable(engine, cfg, opts);
  EXPECT_TRUE(rep.stabilized);
  // Exactly the scheduled injections fired, then the run could stabilize.
  EXPECT_EQ(adv.total_events() - events_before, rep.fault_events);
  EXPECT_GE(rep.rounds, 10u);
}

TEST(FaultAdversary, IterativeRunnerAccountsAndReportsInjectedFaults) {
  // The pipeline algorithms are NOT self-stabilizing (that is what the
  // selfstab runners are for), so an injected fault may legitimately leave
  // the final coloring improper.  The contract under RunOptions::adversary
  // is truthful accounting: fault_events counts the injections, the mirror
  // is resynced after each one, and `proper` reports what actually holds.
  const auto g = graph::random_regular(200, 6, 9);

  struct Corrupt final : runtime::FaultAdversary {
    runtime::Adversary tools{42};
    std::size_t inject(runtime::Engine& engine, std::size_t round) override {
      if (round != 2) return 0;
      const std::size_t before = tools.events();
      // clone_neighbor keeps values inside the stage's declared message
      // width (arbitrary corruption could exceed it and be rejected by the
      // transport) while still forcing monochromatic edges.
      tools.clone_neighbor(engine, 8);
      return tools.events() - before;
    }
  } adversary;

  coloring::PipelineOptions opts;
  opts.iter.adversary = &adversary;
  const auto rep = coloring::color_delta_plus_one(g, opts);
  EXPECT_GT(rep.fault_events, 0u);
  EXPECT_EQ(rep.proper, graph::is_proper_coloring(g, rep.colors));
  EXPECT_EQ(rep.colors.size(), g.n());
}

// ---------------------------------------------------------------------------
// Structured events from a full pipeline run.
// ---------------------------------------------------------------------------

TEST(Events, PipelineEmitsBalancedStageBrackets) {
  const auto g = graph::random_regular(200, 8, 5);
  obs::RingSink ring(8192);
  coloring::PipelineOptions opts;
  opts.iter.sink = &ring;
  const auto rep = coloring::color_delta_plus_one(g, opts);
  ASSERT_TRUE(rep.proper);

  std::size_t starts = 0, ends = 0, round_ends = 0;
  for (const auto& ev : ring.snapshot()) {
    if (ev.kind == obs::EventKind::StageStart) ++starts;
    if (ev.kind == obs::EventKind::StageEnd) ++ends;
    if (ev.kind == obs::EventKind::RoundEnd) ++round_ends;
  }
  EXPECT_EQ(starts, 3u);  // linial, ag, reduce
  EXPECT_EQ(ends, 3u);
  EXPECT_EQ(round_ends, rep.rounds);
}

}  // namespace
