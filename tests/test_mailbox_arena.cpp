// MailboxArena unit tests: CSR rebuild on topology change, the spill lane,
// and the dynamic-topology regression the arena design must not break —
// after Engine::add_edge / remove_edge / add_vertex / reset_vertex between
// rounds, port counts change, and a mailbox view built from stale port
// tables would read the wrong sender's words (or out of bounds).  The churn
// tests below mutate topology before EVERY round under SET-LOCAL and assert
// each vertex hears exactly its current neighborhood.
#include <gtest/gtest.h>

#include <algorithm>
#include <memory>
#include <vector>

#include "agc/exec/executor.hpp"
#include "agc/graph/generators.hpp"
#include "agc/runtime/engine.hpp"

namespace {

using namespace agc;
using namespace agc::runtime;

/// Single-shard arena over a graph for direct view-level tests.
struct ArenaHarness {
  explicit ArenaHarness(graph::Graph graph) : g(std::move(graph)) {
    arena.ensure(g);
    arena.ensure_shards(1);
    arena.begin_shard(0);
    for (graph::Vertex v = 0; v < g.n(); ++v) arena.reset_ports(v);
  }
  graph::Graph g;
  MailboxArena arena;
};

TEST(MailboxArena, EnsureIsNoOpUntilTopologyChanges) {
  auto g = graph::cycle(8);
  MailboxArena arena;
  arena.ensure(g);
  const auto v0 = arena.topology_version();
  arena.ensure(g);  // same version: O(1) no-op
  EXPECT_EQ(arena.topology_version(), v0);

  ASSERT_TRUE(g.add_edge(0, 4));
  EXPECT_NE(g.topology_version(), v0);
  arena.ensure(g);
  EXPECT_EQ(arena.topology_version(), g.topology_version());
  EXPECT_EQ(arena.ports(0), 3u);
}

TEST(MailboxArena, InlineThenSpillKeepsWordsContiguousAndOrdered) {
  ArenaHarness h(graph::path(2));
  auto out = h.arena.outbox(0, 0);
  for (std::uint64_t i = 0; i < 6; ++i) {
    out.send(0, {i, 8});
  }
  const auto words = h.arena.words(h.arena.base(0));
  ASSERT_EQ(words.size(), 6u);
  for (std::uint64_t i = 0; i < 6; ++i) EXPECT_EQ(words[i].value, i);
  // One inline word, five spilled.
  EXPECT_EQ(h.arena.spilled_words(), 6u);

  // The receiver reads the same contiguous run through its inbox view.
  const auto in = h.arena.inbox(1, 0);
  const auto got = in.from_port(0);
  ASSERT_EQ(got.size(), 6u);
  EXPECT_EQ(got[5].value, 5u);
}

TEST(MailboxArena, InterleavedSpillsOfTwoPortsStayIntact) {
  // Vertex 1 of a path(3) has two ports; alternate pushes so both ports
  // outgrow their inline slot and relocate in the same lane.
  ArenaHarness h(graph::path(3));
  auto out = h.arena.outbox(1, 0);
  for (std::uint64_t i = 0; i < 5; ++i) {
    out.send(0, {10 + i, 8});
    out.send(1, {20 + i, 8});
  }
  for (std::size_t port = 0; port < 2; ++port) {
    const auto words = out.at(port);
    ASSERT_EQ(words.size(), 5u) << "port " << port;
    for (std::uint64_t i = 0; i < 5; ++i) {
      EXPECT_EQ(words[i].value, (port == 0 ? 10 : 20) + i);
    }
  }
  EXPECT_EQ(h.arena.spilled_words(), 10u);
}

TEST(MailboxArena, RoundResetKeepsLaneCapacity) {
  ArenaHarness h(graph::path(2));
  auto out = h.arena.outbox(0, 0);
  for (std::uint64_t i = 0; i < 40; ++i) out.send(0, {i, 8});
  const auto cap = h.arena.lane_capacity();
  EXPECT_GT(cap, 0u);

  // Next round: reset, then refill — capacity must be reused, not regrown.
  h.arena.begin_shard(0);
  h.arena.reset_ports(0);
  h.arena.reset_ports(1);
  EXPECT_EQ(h.arena.words(h.arena.base(0)).size(), 0u);
  auto out2 = h.arena.outbox(0, 0);
  for (std::uint64_t i = 0; i < 40; ++i) out2.send(0, {i, 8});
  EXPECT_EQ(h.arena.lane_capacity(), cap);
  EXPECT_EQ(h.arena.words(h.arena.base(0)).size(), 40u);
}

/// Broadcasts its own id; records the multiset heard each round.
class IdEchoProgram final : public VertexProgram {
 public:
  void on_send(const VertexEnv& env, OutboxRef& out) override {
    out.broadcast({env.padded_id, width_of(env.id_space - 1)});
  }
  void on_receive(const VertexEnv&, const InboxRef& in) override {
    const auto ms = in.multiset();
    heard.assign(ms.begin(), ms.end());
  }
  std::vector<std::uint64_t> heard;
};

/// After each step, every vertex must have heard exactly its CURRENT sorted
/// neighbor list — a stale port table would misroute or drop messages.
void expect_heard_matches_neighbors(Engine& engine) {
  const auto& g = engine.graph();
  for (graph::Vertex v = 0; v < g.n(); ++v) {
    const auto nbrs = g.neighbors(v);
    const std::vector<std::uint64_t> want(nbrs.begin(), nbrs.end());
    const auto& heard = dynamic_cast<IdEchoProgram&>(engine.program(v)).heard;
    EXPECT_EQ(heard, want) << "vertex " << v;
  }
}

TEST(MailboxArenaChurn, TopologyChurnEveryRoundUnderSetLocal) {
  for (const std::size_t threads : {std::size_t{1}, std::size_t{2}}) {
    Engine engine(graph::path(6), Transport(Model::SET_LOCAL));
    engine.set_executor(exec::make_executor(threads));
    engine.install(
        [](const VertexEnv&) { return std::make_unique<IdEchoProgram>(); });

    graph::Rng rng(99);
    for (int round = 0; round < 40; ++round) {
      // Mutate topology BETWEEN rounds, a different mutation class each time.
      const std::size_t n = engine.graph().n();
      switch (round % 4) {
        case 0:
          engine.add_edge(static_cast<graph::Vertex>(rng.below(n)),
                          static_cast<graph::Vertex>(rng.below(n)));
          break;
        case 1: {
          const auto edges = graph::edge_list(engine.graph());
          if (!edges.empty()) {
            const auto& e = edges[rng.below(edges.size())];
            engine.remove_edge(e.first, e.second);
          }
          break;
        }
        case 2:
          engine.reset_vertex(static_cast<graph::Vertex>(rng.below(n)));
          break;
        case 3: {
          const auto v = engine.add_vertex();
          engine.add_edge(v, static_cast<graph::Vertex>(rng.below(v)));
          break;
        }
      }
      engine.step();
      expect_heard_matches_neighbors(engine);
    }
  }
}

TEST(MailboxArenaChurn, DegreeGrowthPastInitialCapacity) {
  // A vertex whose degree only grows: every port table rebuild must track
  // it, and the SET-LOCAL multiset must never report a stale (smaller or
  // larger) neighborhood.
  Engine engine(graph::Graph(12), Transport(Model::SET_LOCAL));
  engine.install(
      [](const VertexEnv&) { return std::make_unique<IdEchoProgram>(); });
  for (graph::Vertex u = 1; u < 12; ++u) {
    ASSERT_TRUE(engine.add_edge(0, u));
    engine.step();
    const auto& heard = dynamic_cast<IdEchoProgram&>(engine.program(0)).heard;
    EXPECT_EQ(heard.size(), static_cast<std::size_t>(u));
    expect_heard_matches_neighbors(engine);
  }
}

}  // namespace
