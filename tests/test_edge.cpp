// Edge-coloring suite: Kuhn's 2-defective pairs, the class chains, CV defect
// removal, and the distributed CONGEST / Bit-Round pipeline of Section 5.
#include <gtest/gtest.h>

#include <map>

#include "agc/coloring/cole_vishkin.hpp"
#include "agc/edge/defective_edge.hpp"
#include "agc/edge/edge_coloring.hpp"
#include "agc/graph/generators.hpp"

namespace {

using namespace agc;

TEST(DefectiveEdge, PairsAreTwoDefective) {
  const auto g = graph::random_regular(80, 7, 3);
  const auto pairs = edge::kuhn_defective_pairs(g);
  const auto edges = graph::edge_list(g);
  // At any vertex, each class <i,j> appears at most twice (once outgoing,
  // once incoming).
  std::map<std::tuple<graph::Vertex, std::uint32_t, std::uint32_t>, int> out_cnt,
      in_cnt;
  for (std::size_t e = 0; e < edges.size(); ++e) {
    EXPECT_GE(pairs[e].i, 1u);
    EXPECT_LE(pairs[e].i, g.max_degree());
    ++out_cnt[{edges[e].first, pairs[e].i, pairs[e].j}];
    ++in_cnt[{edges[e].second, pairs[e].i, pairs[e].j}];
  }
  for (const auto& [k, c] : out_cnt) EXPECT_LE(c, 1);
  for (const auto& [k, c] : in_cnt) EXPECT_LE(c, 1);
}

TEST(DefectiveEdge, ChainsAreFunctional) {
  const auto g = graph::random_gnp(100, 0.08, 9);
  const auto pairs = edge::kuhn_defective_pairs(g);
  const auto succ = edge::class_successors(g, pairs);
  // In-degree of the successor relation is at most 1 (chains, not trees).
  std::vector<int> indeg(g.m(), 0);
  for (std::size_t e = 0; e < succ.size(); ++e) {
    if (succ[e] != coloring::cv::npos) {
      ++indeg[succ[e]];
      // Successors stay within the class.
      EXPECT_EQ(pairs[e].i, pairs[succ[e]].i);
      EXPECT_EQ(pairs[e].j, pairs[succ[e]].j);
    }
  }
  for (int d : indeg) EXPECT_LE(d, 1);
}

TEST(DefectiveEdge, HostPipelineIsProper) {
  const auto g = graph::random_regular(100, 8, 21);
  std::size_t rounds = 0;
  const auto colors = edge::defect_free_edge_coloring(g, &rounds);
  EXPECT_TRUE(graph::is_proper_edge_coloring(g, colors));
  EXPECT_LT(graph::max_color(colors), 3 * g.max_degree() * g.max_degree());
  EXPECT_LE(rounds, 40u);  // log* + O(1)
}

TEST(EdgeColoring, CongestExactTwoDeltaMinusOne) {
  const auto g = graph::random_regular(100, 8, 5);
  const auto res = edge::color_edges_distributed(g);
  EXPECT_TRUE(res.converged);
  EXPECT_TRUE(res.proper);
  EXPECT_LT(graph::max_color(res.colors), 2 * g.max_degree() - 1);
}

TEST(EdgeColoring, CongestODeltaPalette) {
  const auto g = graph::random_gnp(120, 0.07, 13);
  edge::EdgeColoringOptions opts;
  opts.exact = false;
  const auto res = edge::color_edges_distributed(g, opts);
  EXPECT_TRUE(res.converged);
  EXPECT_TRUE(res.proper);
  // Lemma 5.1: O(Delta) colors (the AG modulus is < 5*Delta here).
  EXPECT_LT(graph::max_color(res.colors), 6 * g.max_degree());
}

TEST(EdgeColoring, BitRoundModelWorksAndBitsAreLinear) {
  const auto g = graph::random_regular(60, 6, 8);
  edge::EdgeColoringOptions opts;
  opts.bit_round = true;
  const auto res = edge::color_edges_distributed(g, opts);
  EXPECT_TRUE(res.converged);
  EXPECT_TRUE(res.proper);
  EXPECT_LT(graph::max_color(res.colors), 2 * g.max_degree() - 1);
  // Lemma 5.2: O(Delta + log n) bits per edge per direction.
  EXPECT_LT(res.avg_bits_per_edge, 60.0 * (g.max_degree() + 10));
}

TEST(EdgeColoring, PathAndCycleAndStar) {
  for (const auto& g : {graph::path(20), graph::cycle(21), graph::star(12)}) {
    const auto res = edge::color_edges_distributed(g);
    EXPECT_TRUE(res.converged);
    EXPECT_TRUE(res.proper);
    EXPECT_LE(graph::max_color(res.colors),
              std::max<std::size_t>(2 * g.max_degree() - 1, 1) - 1);
  }
}

}  // namespace
