// The exec subsystem's contract (docs/EXEC.md): the sharded parallel round
// executor is bit-identical to the sequential engine for EVERY thread count —
// same colorings, same round counts, same metrics (messages, total bits,
// per-edge maximum), same fault-adversary trajectories.  These tests compare
// whole executions, not just final answers, across models and graph families.
#include <gtest/gtest.h>

#include <cstdlib>
#include <stdexcept>
#include <vector>

#include "agc/coloring/pipeline.hpp"
#include "agc/exec/executor.hpp"
#include "agc/exec/thread_pool.hpp"
#include "agc/graph/generators.hpp"
#include "agc/runtime/engine.hpp"
#include "agc/runtime/faults.hpp"
#include "agc/selfstab/ss_coloring.hpp"
#include "agc/selfstab/ss_line.hpp"

namespace {

using namespace agc;

std::vector<graph::Graph> test_graphs() {
  std::vector<graph::Graph> gs;
  gs.push_back(graph::random_gnp(300, 0.05, 42));
  gs.push_back(graph::random_regular(400, 8, 7));
  gs.push_back(graph::grid(15, 20));
  return gs;
}

void expect_same_metrics(const runtime::Metrics& a, const runtime::Metrics& b) {
  EXPECT_EQ(a.rounds, b.rounds);
  EXPECT_EQ(a.messages, b.messages);
  EXPECT_EQ(a.total_bits, b.total_bits);
  EXPECT_EQ(a.max_edge_bits, b.max_edge_bits);
}

// The full pipeline (Linial + AG + reduction) in each communication model,
// sequential vs 1/2/8 shard threads: identical colorings, rounds and metrics.
TEST(ExecDeterminism, PipelineAcrossModelsThreadsGraphs) {
  for (const auto& g : test_graphs()) {
    for (const runtime::Model model :
         {runtime::Model::SET_LOCAL, runtime::Model::LOCAL,
          runtime::Model::CONGEST}) {
      coloring::PipelineOptions base;
      base.iter.model = model;
      const auto seq = coloring::color_delta_plus_one(g, base);
      ASSERT_TRUE(seq.converged);
      ASSERT_TRUE(seq.proper);

      for (const std::size_t threads : {1, 2, 8}) {
        coloring::PipelineOptions par = base;
        par.iter.executor = exec::make_executor(threads);
        const auto rep = coloring::color_delta_plus_one(g, par);
        EXPECT_EQ(rep.colors, seq.colors) << "threads=" << threads;
        EXPECT_EQ(rep.rounds, seq.rounds) << "threads=" << threads;
        EXPECT_EQ(rep.palette, seq.palette);
        EXPECT_EQ(rep.proper_each_round, seq.proper_each_round);
        expect_same_metrics(rep.metrics, seq.metrics);
      }
    }
  }
}

// A 1-bit broadcast program for the Bit-Round model.  RAM word 0 is an
// order-sensitive hash chain over the inbox (port by port), so it detects any
// difference in delivery contents OR order, not just in the final multiset.
class BitChainProgram final : public runtime::VertexProgram {
 public:
  void on_start(const runtime::VertexEnv& env) override {
    ram_ = {0, env.padded_id & 1};
  }
  void on_send(const runtime::VertexEnv& /*env*/,
               runtime::OutboxRef& out) override {
    out.broadcast(runtime::Word{ram_[1] & 1, 1});
  }
  void on_receive(const runtime::VertexEnv& /*env*/,
                  const runtime::InboxRef& in) override {
    for (std::size_t p = 0; p < in.ports(); ++p) {
      for (const runtime::Word w : in.from_port(p)) {
        ram_[0] = ram_[0] * 1099511628211ULL + (w.value << 1 | 1);
      }
    }
    ram_[1] ^= ram_[0] & 1;
  }
  std::span<std::uint64_t> ram() override { return ram_; }

 private:
  std::vector<std::uint64_t> ram_ = {0, 0};
};

TEST(ExecDeterminism, BitModelRamAndMetrics) {
  const auto g = graph::random_gnp(250, 0.04, 9);
  auto make_engine = [&] {
    runtime::Engine e(g, runtime::Transport(runtime::Model::BIT));
    e.install([](const runtime::VertexEnv&) {
      return std::make_unique<BitChainProgram>();
    });
    return e;
  };

  auto seq = make_engine();
  auto par = make_engine();
  par.set_executor(exec::make_executor(8));
  for (int r = 0; r < 6; ++r) {
    seq.step();
    par.step();
  }
  for (graph::Vertex v = 0; v < g.n(); ++v) {
    const auto a = seq.program(v).ram();
    const auto b = par.program(v).ram();
    ASSERT_EQ(a.size(), b.size());
    for (std::size_t w = 0; w < a.size(); ++w) EXPECT_EQ(a[w], b[w]) << v;
  }
  expect_same_metrics(seq.metrics(), par.metrics());
  // The Bit-Round model really was exercised: 1 bit per edge per round.
  EXPECT_EQ(seq.metrics().max_edge_bits, 6u);
}

// Identical fault-adversary trajectories: two self-stabilizing engines, one
// sequential and one on 3 threads, driven by same-seed adversaries through
// RAM corruption, worst-case neighbor cloning, and edge/vertex churn.  Every
// epoch must stabilize in the same number of rounds with the same RAM.
TEST(ExecDeterminism, FaultAdversaryTrajectory) {
  const std::size_t delta = 10;
  const auto g = graph::random_regular(200, 6, 11);
  selfstab::SsConfig cfg(g.n(), delta, selfstab::PaletteMode::ODelta);
  auto make_engine = [&](std::shared_ptr<runtime::RoundExecutor> ex) {
    runtime::EngineOptions eo;
    eo.delta_bound = delta;
    runtime::Engine e(g, runtime::Transport(runtime::Model::LOCAL), eo);
    e.set_executor(std::move(ex));
    e.install(selfstab::ss_coloring_factory(cfg));
    return e;
  };

  auto seq = make_engine(nullptr);
  auto par = make_engine(exec::make_executor(3));
  runtime::Adversary adv_seq(77), adv_par(77);

  for (int epoch = 0; epoch < 3; ++epoch) {
    if (epoch > 0) {
      adv_seq.corrupt_random(seq, 12, cfg.span());
      adv_par.corrupt_random(par, 12, cfg.span());
      adv_seq.clone_neighbor(seq, 6);
      adv_par.clone_neighbor(par, 6);
      adv_seq.churn_edges(seq, 5, 5, delta);
      adv_par.churn_edges(par, 5, 5, delta);
    }
    const auto rs = selfstab::run_until_stable(seq, cfg, 100000);
    const auto rp = selfstab::run_until_stable(par, cfg, 100000);
    ASSERT_TRUE(rs.stabilized);
    ASSERT_TRUE(rp.stabilized);
    EXPECT_EQ(rs.rounds_to_stable, rp.rounds_to_stable) << "epoch " << epoch;
    EXPECT_EQ(rs.colors, rp.colors) << "epoch " << epoch;
    for (graph::Vertex v = 0; v < seq.graph().n(); ++v) {
      const auto a = seq.program(v).ram();
      const auto b = par.program(v).ram();
      ASSERT_EQ(a.size(), b.size());
      for (std::size_t w = 0; w < a.size(); ++w) {
        ASSERT_EQ(a[w], b[w]) << "epoch " << epoch << " v " << v;
      }
    }
    expect_same_metrics(seq.metrics(), par.metrics());
  }
}

// More shards than vertices (empty shards) must still be exact.
TEST(ExecDeterminism, MoreShardsThanVertices) {
  const auto g = graph::cycle(5);
  coloring::PipelineOptions base;
  const auto seq = coloring::color_delta_plus_one(g, base);
  coloring::PipelineOptions par = base;
  par.iter.executor = exec::make_executor(8);
  const auto rep = coloring::color_delta_plus_one(g, par);
  EXPECT_EQ(rep.colors, seq.colors);
  expect_same_metrics(rep.metrics, seq.metrics);
}

// The arena's spill lane under shards: the LOCAL-model line-graph simulation
// sends degree-many words per port in phase B, so every port outgrows its
// inline slot.  Spilled message volume is partition-independent and the
// whole trajectory (RAM + metrics + arena growth) must be bit-identical for
// thread counts 1/2/8; lane layout per thread count must be reproducible
// run-to-run.  The TSan CI job runs this binary, covering the concurrent
// spill writes.
TEST(ExecDeterminism, SsLineSpillLaneDeterministicAcrossThreads) {
  const auto g = graph::random_gnp(48, 0.14, 33);
  selfstab::SsLineConfig cfg(g.n(), g.max_degree(),
                             selfstab::LineTask::MaximalMatching);

  struct Trace {
    std::vector<std::uint64_t> spilled;     ///< per-round spilled words
    std::vector<std::uint64_t> lane_used;   ///< per-round lane usage
    std::vector<std::uint64_t> ram;         ///< final RAM, all vertices
    runtime::Metrics metrics;
  };
  auto run = [&](std::size_t threads) {
    runtime::EngineOptions eo;
    eo.delta_bound = g.max_degree();
    runtime::Engine engine(g, runtime::Transport(runtime::Model::LOCAL), eo);
    engine.set_executor(exec::make_executor(threads));
    engine.install(selfstab::ss_line_factory(cfg));
    Trace t;
    for (int round = 0; round < 30; ++round) {
      engine.step();
      t.spilled.push_back(engine.arena().spilled_words());
      t.lane_used.push_back(engine.arena().lane_words_used());
    }
    for (graph::Vertex v = 0; v < engine.graph().n(); ++v) {
      for (const std::uint64_t w : engine.program(v).ram()) t.ram.push_back(w);
    }
    t.metrics = engine.metrics();
    return t;
  };

  const Trace seq = run(1);
  // Phase-B rounds (odd) actually spill: deg words per port, 1 inline.
  EXPECT_GT(seq.spilled[1], 0u);

  for (const std::size_t threads : {2, 8}) {
    const Trace par = run(threads);
    // Observable state and spill volume: partition-independent.
    EXPECT_EQ(par.ram, seq.ram) << "threads=" << threads;
    EXPECT_EQ(par.spilled, seq.spilled) << "threads=" << threads;
    expect_same_metrics(par.metrics, seq.metrics);
    // Lane layout: partition-dependent but deterministic per thread count.
    const Trace repeat = run(threads);
    EXPECT_EQ(repeat.lane_used, par.lane_used) << "threads=" << threads;
    EXPECT_EQ(repeat.ram, par.ram) << "threads=" << threads;
  }
}

TEST(ThreadPool, RunsEveryTaskExactlyOnce) {
  exec::ThreadPool pool(4);
  std::vector<int> hits(100, 0);
  pool.run(hits.size(), [&](std::size_t i) { ++hits[i]; });
  for (int h : hits) EXPECT_EQ(h, 1);
}

TEST(ThreadPool, PropagatesLowestIndexedException) {
  exec::ThreadPool pool(4);
  for (int rep = 0; rep < 10; ++rep) {
    try {
      pool.run(16, [](std::size_t i) {
        if (i >= 3) throw std::runtime_error("task " + std::to_string(i));
      });
      FAIL() << "expected an exception";
    } catch (const std::runtime_error& e) {
      EXPECT_STREQ(e.what(), "task 3");
    }
    // The pool must stay usable after a failed batch.
    std::vector<int> hits(8, 0);
    pool.run(hits.size(), [&](std::size_t i) { ++hits[i]; });
    for (int h : hits) EXPECT_EQ(h, 1);
  }
}

TEST(Executors, FactorySemantics) {
  EXPECT_EQ(exec::make_executor(1)->threads(), 1u);
  EXPECT_EQ(exec::make_executor(3)->threads(), 3u);
  EXPECT_GE(exec::make_executor(0)->threads(), 1u);  // hardware concurrency

  setenv("AGC_THREADS", "5", 1);
  EXPECT_EQ(exec::default_threads(), 5u);
  unsetenv("AGC_THREADS");
  EXPECT_EQ(exec::default_threads(), 1u);
}

}  // namespace
