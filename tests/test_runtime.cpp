// Runtime substrate: mailboxes, transports (model enforcement + accounting),
// the round engine (delivery, dynamics, RAM), and the locally-iterative
// harness.
#include <gtest/gtest.h>

#include <memory>

#include "agc/graph/generators.hpp"
#include "agc/runtime/engine.hpp"
#include "agc/runtime/faults.hpp"
#include "agc/runtime/iterative.hpp"

namespace {

using namespace agc;
using namespace agc::runtime;

TEST(Message, WidthOf) {
  EXPECT_EQ(width_of(0), 1u);
  EXPECT_EQ(width_of(1), 1u);
  EXPECT_EQ(width_of(2), 2u);
  EXPECT_EQ(width_of(255), 8u);
  EXPECT_EQ(width_of(256), 9u);
  EXPECT_EQ(width_of(~0ULL), 64u);
}

/// Single-shard arena around a graph, for direct Outbox/Inbox view tests.
struct ArenaHarness {
  explicit ArenaHarness(graph::Graph graph) : g(std::move(graph)) {
    arena.ensure(g);
    arena.ensure_shards(1);
    arena.begin_shard(0);
    for (graph::Vertex v = 0; v < g.n(); ++v) arena.reset_ports(v);
  }
  [[nodiscard]] OutboxRef outbox(graph::Vertex v) { return arena.outbox(v, 0); }
  [[nodiscard]] InboxRef inbox(graph::Vertex v) { return arena.inbox(v, 0); }

  graph::Graph g;
  MailboxArena arena;
};

TEST(Message, InboxMultisetSortedAnonymous) {
  // Star: 0 is adjacent to {1, 2, 3}; leaves 1 and 3 send, 2 stays silent.
  ArenaHarness h(graph::Graph::from_edges(
      4, std::vector<graph::Edge>{{0, 1}, {0, 2}, {0, 3}}));
  h.outbox(1).send(0, {42, 8});
  h.outbox(3).send(0, {7, 8});
  const auto in = h.inbox(0);
  const auto ms = in.multiset();
  EXPECT_EQ(std::vector<std::uint64_t>(ms.begin(), ms.end()),
            (std::vector<std::uint64_t>{7, 42}));
  EXPECT_EQ(in.value_or(1, 99), 99u);  // port 1 = silent neighbor 2
}

TEST(TransportTest, CongestCapEnforced) {
  const Transport t(Model::CONGEST, 8);
  ArenaHarness h(graph::path(3));  // vertex 1 has two ports
  auto out = h.outbox(1);
  out.send(0, {200, 8});
  EXPECT_NO_THROW(t.validate(out));
  ArenaHarness hw(graph::path(3));
  auto wide = hw.outbox(1);
  wide.send(0, {512, 10});
  EXPECT_THROW(t.validate(wide), std::logic_error);
  // Multiple words on one port count together.
  ArenaHarness hm(graph::path(2));
  auto multi = hm.outbox(0);
  multi.send(0, {1, 5});
  multi.send(0, {1, 5});
  EXPECT_THROW(t.validate(multi), std::logic_error);
}

TEST(TransportTest, DeclaredWidthMustCoverValue) {
  const Transport t(Model::LOCAL);
  ArenaHarness h(graph::path(2));
  auto out = h.outbox(0);
  out.send(0, {256, 8});  // 256 needs 9 bits
  EXPECT_THROW(t.validate(out), std::logic_error);
}

TEST(TransportTest, SetLocalForbidsDirectedSends) {
  const Transport t(Model::SET_LOCAL);
  ArenaHarness h(graph::path(3));
  auto dir = h.outbox(1);
  dir.send(0, {1, 1});
  EXPECT_THROW(t.validate(dir), std::logic_error);
  ArenaHarness hb(graph::path(3));
  auto bc = hb.outbox(1);
  bc.broadcast({1, 1});
  EXPECT_NO_THROW(t.validate(bc));
}

TEST(TransportTest, BitModelOneBit) {
  const Transport t(Model::BIT);
  ArenaHarness h(graph::path(2));
  auto out = h.outbox(0);
  out.send(0, {1, 1});
  EXPECT_NO_THROW(t.validate(out));
  ArenaHarness ht(graph::path(2));
  auto two = ht.outbox(0);
  two.send(0, {2, 2});
  EXPECT_THROW(t.validate(two), std::logic_error);
}

/// Echo program: broadcasts its id, records the multiset it hears.
class EchoProgram final : public VertexProgram {
 public:
  void on_send(const VertexEnv& env, OutboxRef& out) override {
    out.broadcast({env.padded_id, width_of(env.id_space - 1)});
  }
  void on_receive(const VertexEnv&, const InboxRef& in) override {
    const auto ms = in.multiset();  // scratch-backed: copy out of the view
    heard.assign(ms.begin(), ms.end());
  }
  std::vector<std::uint64_t> heard;
};

TEST(EngineTest, DeliversToCorrectPorts) {
  const auto g = graph::path(4);  // 0-1-2-3
  Engine engine(g, Transport(Model::LOCAL));
  engine.install([](const VertexEnv&) { return std::make_unique<EchoProgram>(); });
  engine.step();
  auto& p1 = dynamic_cast<EchoProgram&>(engine.program(1));
  EXPECT_EQ(p1.heard, (std::vector<std::uint64_t>{0, 2}));
  auto& p0 = dynamic_cast<EchoProgram&>(engine.program(0));
  EXPECT_EQ(p0.heard, (std::vector<std::uint64_t>{1}));
}

TEST(EngineTest, MetricsCountMessagesAndBits) {
  const auto g = graph::cycle(5);
  Engine engine(g, Transport(Model::LOCAL));
  engine.install([](const VertexEnv&) { return std::make_unique<EchoProgram>(); });
  engine.step();
  engine.step();
  // 5 vertices x 2 neighbors x 2 rounds directed messages.
  EXPECT_EQ(engine.metrics().messages, 20u);
  EXPECT_EQ(engine.metrics().rounds, 2u);
  EXPECT_EQ(engine.metrics().total_bits, 20u * width_of(4));
  // Each directed edge carried exactly 2 messages of width_of(4) bits.
  EXPECT_EQ(engine.metrics().max_edge_bits, 2 * width_of(4));
}

TEST(EngineTest, IdSpaceFactor) {
  EngineOptions opts;
  opts.id_space_factor = 1000;
  Engine engine(graph::path(3), Transport(Model::LOCAL), opts);
  EXPECT_EQ(engine.env(0).id_space, 3000u);
  EXPECT_EQ(engine.env(2).padded_id, 2u);
}

TEST(EngineTest, DynamicTopology) {
  Engine engine(graph::path(4), Transport(Model::LOCAL));
  engine.install([](const VertexEnv&) { return std::make_unique<EchoProgram>(); });
  EXPECT_TRUE(engine.add_edge(0, 3));
  EXPECT_FALSE(engine.add_edge(0, 1));
  engine.step();
  auto& p0 = dynamic_cast<EchoProgram&>(engine.program(0));
  EXPECT_EQ(p0.heard, (std::vector<std::uint64_t>{1, 3}));

  const auto v = engine.add_vertex();
  EXPECT_EQ(v, 4u);
  EXPECT_TRUE(engine.add_edge(v, 0));
  engine.step();
  EXPECT_EQ(p0.heard.size(), 3u);

  engine.reset_vertex(0);
  EXPECT_EQ(engine.graph().degree(0), 0u);
}

/// Program with one RAM word, for adversary tests.
class RamProgram final : public VertexProgram {
 public:
  void on_send(const VertexEnv&, OutboxRef& out) override {
    out.broadcast({word, 64});
  }
  void on_receive(const VertexEnv&, const InboxRef&) override {}
  std::span<std::uint64_t> ram() override { return {&word, 1}; }
  std::uint64_t word = 7;
};

TEST(EngineTest, RamCorruption) {
  Engine engine(graph::path(3), Transport(Model::LOCAL));
  engine.install([](const VertexEnv&) { return std::make_unique<RamProgram>(); });
  engine.corrupt_ram(1, 0, 12345);
  EXPECT_EQ(engine.ram(1)[0], 12345u);
  engine.corrupt_ram(1, 5, 0);  // out of range: no-op
  EXPECT_EQ(engine.ram(1).size(), 1u);
}

TEST(AdversaryTest, EventsAreCountedAndCapped) {
  Engine engine(graph::random_bounded_degree(50, 5, 100, 3),
                Transport(Model::LOCAL));
  engine.install([](const VertexEnv&) { return std::make_unique<RamProgram>(); });
  Adversary adv(1);
  adv.corrupt_random(engine, 10, 100);
  EXPECT_EQ(adv.events(), 10u);
  adv.churn_edges(engine, 10, 5, 5);
  EXPECT_LE(engine.graph().max_degree(), 5u);
  adv.churn_vertices(engine, 3, 2, 5);
  EXPECT_LE(engine.graph().max_degree(), 5u);
}

/// Rule: decrement to zero (needs no neighbor info); final at 0.
class CountdownRule final : public IterativeRule {
 public:
  Color step(Color own, std::span<const Color>) const override {
    return own == 0 ? 0 : own - 1;
  }
  bool is_final(Color c) const override { return c == 0; }
  std::uint32_t color_bits() const override { return 16; }
};

TEST(IterativeHarness, RunsUntilAllFinal) {
  const auto g = graph::cycle(6);
  CountdownRule rule;
  IterativeOptions opts;
  opts.check_proper_each_round = false;
  auto res = run_locally_iterative(g, {5, 4, 3, 2, 1, 0}, rule, opts);
  EXPECT_TRUE(res.converged);
  EXPECT_EQ(res.rounds, 5u);
  EXPECT_EQ(res.colors, (std::vector<Color>(6, 0)));
}

TEST(IterativeHarness, DetectsImproperIntermediate) {
  const auto g = graph::path(2);
  CountdownRule rule;
  IterativeOptions opts;  // properness checking on
  auto res = run_locally_iterative(g, {2, 1}, rule, opts);
  // Colors pass through {1,0} then land on {0,0}: improper at the end.
  EXPECT_FALSE(res.proper_each_round);
}

TEST(IterativeHarness, MaxRoundsCap) {
  class NeverRule final : public IterativeRule {
   public:
    Color step(Color own, std::span<const Color>) const override { return own ^ 1; }
    bool is_final(Color) const override { return false; }
    std::uint32_t color_bits() const override { return 2; }
  };
  const auto g = graph::path(3);
  NeverRule rule;
  IterativeOptions opts;
  opts.max_rounds = 10;
  opts.check_proper_each_round = false;
  auto res = run_locally_iterative(g, {0, 1, 0}, rule, opts);
  EXPECT_FALSE(res.converged);
  EXPECT_EQ(res.rounds, 10u);
}

}  // namespace
