// Graph I/O round-trips + static symmetry-breaking corollaries (MIS wave,
// maximal matching, line-graph edge coloring).
#include <gtest/gtest.h>

#include <sstream>

#include "agc/coloring/symmetry.hpp"
#include "agc/graph/generators.hpp"
#include "agc/graph/io.hpp"

namespace {

using namespace agc;

TEST(GraphIo, DimacsRoundTrip) {
  const auto g = graph::random_gnp(60, 0.1, 4);
  std::stringstream ss;
  graph::write_edge_list(ss, g);
  const auto back = graph::read_edge_list(ss);
  EXPECT_EQ(back.n(), g.n());
  EXPECT_EQ(graph::edge_list(back), graph::edge_list(g));
}

TEST(GraphIo, BareEdgeListZeroBased) {
  std::stringstream ss("0 1\n1 2\n# comment\n2 3\n");
  const auto g = graph::read_edge_list(ss);
  EXPECT_EQ(g.n(), 4u);
  EXPECT_EQ(g.m(), 3u);
  EXPECT_TRUE(g.has_edge(1, 2));
}

TEST(GraphIo, DimacsHeaderAndComments) {
  std::stringstream ss("c hello\np edge 5 2\ne 1 2\ne 4 5\n");
  const auto g = graph::read_edge_list(ss);
  EXPECT_EQ(g.n(), 5u);
  EXPECT_TRUE(g.has_edge(0, 1));
  EXPECT_TRUE(g.has_edge(3, 4));
}

TEST(GraphIo, RejectsMalformed) {
  std::stringstream loop("e 3 3\np edge 5 1\n");
  EXPECT_THROW(graph::read_edge_list(loop), std::runtime_error);
  std::stringstream range("p edge 3 1\ne 1 9\n");
  EXPECT_THROW(graph::read_edge_list(range), std::runtime_error);
  std::stringstream zero("p edge 3 1\ne 0 1\n");
  EXPECT_THROW(graph::read_edge_list(zero), std::runtime_error);
}

TEST(GraphIo, DotAndCsvShapes) {
  const auto g = graph::cycle(4);
  std::vector<graph::Color> colors = {0, 1, 0, 1};
  std::stringstream dot;
  graph::write_dot(dot, g, colors);
  EXPECT_NE(dot.str().find("v0 -- v1"), std::string::npos);
  EXPECT_NE(dot.str().find("fillcolor"), std::string::npos);
  std::stringstream csv;
  graph::write_coloring_csv(csv, colors);
  EXPECT_EQ(csv.str().substr(0, 13), "vertex,color\n");
}

TEST(MisWave, DecidesInPaletteRounds) {
  const auto g = graph::random_regular(300, 8, 15);
  const auto colored = coloring::color_delta_plus_one(g);
  ASSERT_TRUE(colored.proper);
  const auto rep = coloring::mis_from_coloring(g, colored.colors);
  EXPECT_TRUE(rep.valid);
  EXPECT_LE(rep.rounds_mis, colored.palette + 2);
}

TEST(MisWave, EndToEndFamilies) {
  for (const auto& g :
       {graph::path(30), graph::cycle(31), graph::star(20), graph::complete(12),
        graph::grid(6, 7), graph::random_gnp(120, 0.08, 3)}) {
    const auto rep = coloring::maximal_independent_set(g);
    EXPECT_TRUE(rep.valid);
  }
}

TEST(MisWave, StarPicksEitherCenterOrAllLeaves) {
  const auto rep = coloring::maximal_independent_set(graph::star(12));
  ASSERT_TRUE(rep.valid);
  std::size_t size = 0;
  for (bool b : rep.in_mis) size += b;
  EXPECT_TRUE(size == 1 || size == 11);
}

TEST(MaximalMatching, ValidOnFamilies) {
  for (const auto& g : {graph::path(21), graph::complete(9),
                        graph::random_gnp(90, 0.07, 8), graph::grid(5, 8)}) {
    const auto rep = coloring::maximal_matching(g);
    EXPECT_TRUE(rep.valid);
  }
}

TEST(LineGraphEdgeColoring, TwoDeltaMinusOne) {
  const auto g = graph::random_regular(80, 6, 44);
  const auto rep = coloring::edge_coloring_via_line_graph(g);
  EXPECT_TRUE(rep.proper);
  // Palette = Delta(L(G)) + 1 = 2*Delta - 1.
  EXPECT_LE(rep.palette, 2 * g.max_degree() - 1);
}

}  // namespace
