// Core coloring suite: AG (Section 3), 3AG / AG(N) / mixed (Section 7),
// Linial and Excl-Linial, Cole-Vishkin, reductions, and the end-to-end
// pipelines — including parameterized property sweeps over graph families.
#include <gtest/gtest.h>

#include <functional>
#include <string>

#include "agc/coloring/ag.hpp"
#include "agc/coloring/ag3.hpp"
#include "agc/coloring/cole_vishkin.hpp"
#include "agc/coloring/kuhn_wattenhofer.hpp"
#include "agc/coloring/linial.hpp"
#include "agc/coloring/pipeline.hpp"
#include "agc/coloring/reduction.hpp"
#include "agc/graph/generators.hpp"
#include "agc/math/primes.hpp"

namespace {

using namespace agc;
using coloring::Color;

// ---------------------------------------------------------------------------
// AG (Section 3)
// ---------------------------------------------------------------------------

TEST(AgModulus, SatisfiesBothConstraints) {
  for (std::size_t delta : {1u, 2u, 7u, 40u, 300u}) {
    for (std::uint64_t palette : {4ULL, 100ULL, 10000ULL}) {
      const auto q = coloring::ag_modulus(delta, palette);
      EXPECT_TRUE(math::is_prime(q));
      EXPECT_GT(q, 2 * delta);
      EXPECT_GE(q * q, palette);
    }
  }
}

TEST(Ag, FinalColorsAreFixedPoints) {
  coloring::AgRule rule(11);
  // A final color <0,b> never moves, whatever the neighborhood.
  for (Color b = 0; b < 11; ++b) {
    std::vector<Color> nbrs = {b, b + 11, 120, 3};
    std::sort(nbrs.begin(), nbrs.end());
    EXPECT_EQ(rule.step(b, nbrs), b);
    EXPECT_TRUE(rule.is_final(b));
  }
}

TEST(Ag, ConflictShiftsNoConflictFinalizes) {
  coloring::AgRule rule(11);
  const Color c = 3 * 11 + 5;  // <3,5>
  EXPECT_EQ(rule.step(c, std::vector<Color>{2 * 11 + 5}), 3 * 11 + (5 + 3) % 11);
  EXPECT_EQ(rule.step(c, std::vector<Color>{2 * 11 + 6}), 5u);  // finalize <0,5>
  // Out-of-range neighbors (other pipeline stages) are ignored.
  EXPECT_EQ(rule.step(c, std::vector<Color>{11 * 11 + 5}), 5u);
}

TEST(Ag, NeighborPairConflictsAtMostTwicePerWindow) {
  // Lemma 3.3/3.4: two neighbors share a second coordinate at most twice in q
  // rounds (once working/working, once working/final).
  const std::uint64_t q = 13;
  coloring::AgRule rule(q);
  for (Color cu = 0; cu < q * q; cu += 7) {
    for (Color cv = cu + 1; cv < q * q; cv += 11) {
      Color u = cu, v = cv;
      int conflicts = 0;
      for (std::uint64_t round = 0; round < q; ++round) {
        if (u % q == v % q) ++conflicts;
        const Color nu = rule.step(u, std::vector<Color>{v});
        const Color nv = rule.step(v, std::vector<Color>{u});
        u = nu;
        v = nv;
      }
      EXPECT_LE(conflicts, 2) << "cu=" << cu << " cv=" << cv;
    }
  }
}

struct GraphCase {
  std::string name;
  std::function<graph::Graph()> make;
};

class AgOnGraphs : public ::testing::TestWithParam<GraphCase> {};

TEST_P(AgOnGraphs, ConvergesWithinBoundProperEveryRound) {
  const auto g = GetParam().make();
  const std::size_t delta = std::max<std::size_t>(g.max_degree(), 1);
  auto lin = coloring::linial_color(g, coloring::identity_coloring(g.n()), g.n(),
                                    delta);
  ASSERT_TRUE(lin.converged);
  const std::uint64_t q =
      coloring::ag_modulus(delta, graph::max_color(lin.colors) + 1);
  auto res = coloring::additive_group_color(g, std::move(lin.colors), delta);
  EXPECT_TRUE(res.converged);
  EXPECT_TRUE(res.proper_each_round);
  EXPECT_LE(res.rounds, q);  // Corollary 3.5
  EXPECT_LT(graph::max_color(res.colors), q);
  EXPECT_TRUE(graph::is_proper_coloring(g, res.colors));
}

INSTANTIATE_TEST_SUITE_P(
    Families, AgOnGraphs,
    ::testing::Values(
        GraphCase{"path", [] { return graph::path(60); }},
        GraphCase{"cycle_even", [] { return graph::cycle(60); }},
        GraphCase{"cycle_odd", [] { return graph::cycle(61); }},
        GraphCase{"star", [] { return graph::star(40); }},
        GraphCase{"complete", [] { return graph::complete(20); }},
        GraphCase{"bipartite", [] { return graph::complete_bipartite(12, 17); }},
        GraphCase{"grid", [] { return graph::grid(9, 13); }},
        GraphCase{"tree", [] { return graph::binary_tree(80); }},
        GraphCase{"gnp", [] { return graph::random_gnp(150, 0.07, 5); }},
        GraphCase{"regular", [] { return graph::random_regular(150, 9, 6); }},
        GraphCase{"geometric", [] { return graph::random_geometric(120, 0.12, 7); }},
        GraphCase{"powerlaw", [] { return graph::barabasi_albert(150, 3, 8); }},
        GraphCase{"single_vertex", [] { return graph::Graph(1); }},
        GraphCase{"edgeless", [] { return graph::Graph(12); }}),
    [](const auto& info) { return info.param.name; });

// ---------------------------------------------------------------------------
// 3AG, AG(N), mixed (Section 7)
// ---------------------------------------------------------------------------

TEST(ThreeAg, StepLandsInDeclaredCandidateStates) {
  // Property: from any state, with any neighborhood, the next state is
  // either the state itself (final) or one of the <= 2 colors that
  // Mixed3Rule::candidates declares — the guarantee Excl-Linial leans on.
  coloring::Mixed3Rule rule(6, /*palette=*/13 * 13 * 13 / 2);
  graph::Rng rng(3);
  const std::uint64_t space = rule.space();
  for (int trial = 0; trial < 4000; ++trial) {
    Color own = rng.below(space);
    // Skip the malformed high states the algorithm never writes.
    if (own >= 2 * rule.n() && own < 2 * rule.n() + rule.p()) continue;
    std::vector<Color> nbrs(rng.below(6));
    for (auto& c : nbrs) c = rng.below(space);
    std::sort(nbrs.begin(), nbrs.end());
    const Color next = rule.step(own, nbrs);
    if (next == own) continue;
    const auto cands = rule.candidates(own);
    EXPECT_NE(std::find(cands.begin(), cands.end(), next), cands.end())
        << "own=" << own;
  }
}

TEST(ThreeAg, ReducesCubePaletteToP) {
  const auto g = graph::random_regular(400, 6, 4);
  const std::uint64_t p = coloring::three_ag_modulus(6, g.n());
  coloring::ThreeAgRule rule(p);
  runtime::IterativeOptions io;
  io.max_rounds = 2 * p + 2;
  auto res = runtime::run_locally_iterative(
      g, coloring::identity_coloring(g.n()), rule, io);
  EXPECT_TRUE(res.converged);
  EXPECT_TRUE(res.proper_each_round);
  EXPECT_LT(graph::max_color(res.colors), p);
}

TEST(Agn, ExactPaletteFromOneAndAHalfDelta) {
  // AG(N) with composite N: proper <2N-coloring -> exactly N colors in <= N
  // rounds.
  const auto g = graph::random_regular(300, 11, 2);  // N = 12 (composite)
  const std::size_t delta = g.max_degree();
  const std::uint64_t N = delta + 1;
  // Seed: a proper coloring with < 2N colors via the (1+eps) pipeline piece.
  auto rep = coloring::color_delta_plus_one(g);
  ASSERT_TRUE(rep.converged);
  auto seed = rep.colors;  // < N already; widen artificially into [0, 2N)
  for (std::size_t v = 0; v < seed.size(); ++v) {
    if (v % 3 == 0) seed[v] += N;  // still proper: +N shifts a proper class set
  }
  // The shifted coloring may be improper (c and c+N collide across classes);
  // repair: keep only shifts that stay proper.
  for (const auto& [u, v] : graph::edge_list(g)) {
    if (seed[u] == seed[v]) seed[u] = rep.colors[u];
  }
  ASSERT_TRUE(graph::is_proper_coloring(g, seed));

  coloring::AgnRule rule(N);
  runtime::IterativeOptions io;
  io.max_rounds = N + 1;
  auto res = runtime::run_locally_iterative(g, seed, rule, io);
  EXPECT_TRUE(res.converged);
  EXPECT_TRUE(res.proper_each_round);
  EXPECT_LT(graph::max_color(res.colors), N);
}

class ExactOnGraphs : public ::testing::TestWithParam<GraphCase> {};

TEST_P(ExactOnGraphs, MixedRuleReachesDeltaPlusOne) {
  const auto g = GetParam().make();
  const auto rep = coloring::color_delta_plus_one_exact(g);
  EXPECT_TRUE(rep.converged);
  EXPECT_TRUE(rep.proper);
  EXPECT_TRUE(rep.proper_each_round);
  EXPECT_LE(graph::max_color(rep.colors), std::max<std::size_t>(g.max_degree(), 1));
}

INSTANTIATE_TEST_SUITE_P(
    Families, ExactOnGraphs,
    ::testing::Values(
        GraphCase{"path", [] { return graph::path(50); }},
        GraphCase{"odd_cycle", [] { return graph::cycle(17); }},
        GraphCase{"complete", [] { return graph::complete(15); }},
        GraphCase{"star", [] { return graph::star(30); }},
        GraphCase{"grid", [] { return graph::grid(8, 11); }},
        GraphCase{"gnp", [] { return graph::random_gnp(200, 0.06, 9); }},
        GraphCase{"regular_prime_gap",
                  [] { return graph::random_regular(200, 13, 1); }},
        GraphCase{"geometric", [] { return graph::random_geometric(100, 0.15, 2); }}),
    [](const auto& info) { return info.param.name; });

// ---------------------------------------------------------------------------
// Linial / Mod-Linial / Excl-Linial
// ---------------------------------------------------------------------------

TEST(LinialSchedule, StageInvariants) {
  for (std::size_t delta : {1u, 4u, 16u, 64u}) {
    for (std::uint64_t ids : {100ULL, 1ULL << 20, 1ULL << 45}) {
      coloring::LinialSchedule sched(ids, delta);
      std::uint64_t palette = ids;
      for (std::size_t i = 0; i < sched.stages(); ++i) {
        const auto& st = sched.stage(i);
        EXPECT_EQ(st.from_palette, palette);
        EXPECT_TRUE(math::is_prime(st.q));
        EXPECT_GT(st.q, st.d * delta);  // eval point always exists
        // Coverage: q^{d+1} >= palette.
        long double pow = 1;
        for (std::uint32_t k = 0; k <= st.d; ++k) pow *= st.q;
        EXPECT_GE(pow, static_cast<long double>(palette));
        EXPECT_LT(st.to_palette, palette);  // strict progress
        palette = st.to_palette;
      }
      // Fixed point is O(Delta^2): final field size <= ~4 Delta.
      if (sched.stages() > 0) {
        EXPECT_LE(sched.final_palette(),
                  (4 * delta + 6) * (4 * delta + 6));
      }
      // Intervals are disjoint and stacked.
      for (std::size_t j = 0; j + 1 <= sched.stages(); ++j) {
        EXPECT_EQ(sched.offset(j + 1), sched.offset(j) + sched.interval_size(j));
      }
    }
  }
}

TEST(LinialSchedule, LogStarManyStages) {
  const coloring::LinialSchedule sched(1ULL << 60, 8);
  EXPECT_GE(sched.stages(), 2u);
  EXPECT_LE(sched.stages(), 8u);  // log* 2^60 + O(1)
}

TEST(Linial, RunsInScheduleManyRounds) {
  const auto g = graph::random_regular(500, 10, 12);
  const std::uint64_t ids = static_cast<std::uint64_t>(g.n()) << 30;
  coloring::LinialSchedule sched(ids, 10);
  auto res = coloring::linial_color(g, coloring::identity_coloring(g.n()), ids, 10);
  EXPECT_TRUE(res.converged);
  EXPECT_TRUE(res.proper_each_round);
  EXPECT_EQ(res.rounds, sched.stages());
  EXPECT_LT(graph::max_color(res.colors), sched.final_palette());
}

TEST(ModLinial, ExclForbiddenColorsAvoided) {
  const std::size_t delta = 6;
  coloring::LinialSchedule sched(1000, delta, /*excl_headroom=*/true);
  const auto& last = sched.stage(sched.stages() - 1);
  EXPECT_EQ(last.d, 2u);
  EXPECT_GE(last.q, 4 * delta + 1);

  // Forbid a batch of interval-0 colors; the step must dodge all of them.
  std::vector<std::uint64_t> xs = {1, 2, 3};  // same-interval neighbors
  std::vector<Color> forbidden;
  for (Color c = 0; c < 2 * delta; ++c) forbidden.push_back(c);
  for (std::uint64_t x = 10; x < 30; ++x) {
    const Color out = coloring::mod_linial_step(sched, 1, x, xs, forbidden);
    EXPECT_LT(out, sched.interval_size(0));
    EXPECT_EQ(std::find(forbidden.begin(), forbidden.end(), out), forbidden.end());
  }
}

TEST(ModLinial, SameIntervalNeighborsGetDistinctColors) {
  const std::size_t delta = 5;
  coloring::LinialSchedule sched(100000, delta);
  const std::size_t j = sched.stages();  // topmost interval
  // Any set of <= delta+1 distinct palette indices maps to distinct pairs.
  std::vector<std::uint64_t> group = {17, 4242, 999, 31337, 271828, 55};
  for (std::size_t i = 0; i < group.size(); ++i) {
    std::vector<std::uint64_t> others;
    for (std::size_t k = 0; k < group.size(); ++k) {
      if (k != i) others.push_back(group[k]);
    }
    const Color ci = coloring::mod_linial_step(sched, j, group[i], others, {});
    for (std::size_t k = 0; k < group.size(); ++k) {
      if (k == i) continue;
      std::vector<std::uint64_t> rest;
      for (std::size_t m = 0; m < group.size(); ++m) {
        if (m != k) rest.push_back(group[m]);
      }
      EXPECT_NE(ci, coloring::mod_linial_step(sched, j, group[k], rest, {}));
    }
  }
}

// ---------------------------------------------------------------------------
// Cole-Vishkin
// ---------------------------------------------------------------------------

TEST(ColeVishkin, StepKeepsAdjacentDistinct) {
  graph::Rng rng(11);
  for (int trial = 0; trial < 2000; ++trial) {
    const std::uint64_t a = rng.below(1ULL << 32);
    std::uint64_t b = rng.below(1ULL << 32);
    if (a == b) ++b;
    // If x,y adjacent (y = pred of x) then step(x, y) != step(y, z) for any z
    // that differs from y.
    std::uint64_t z = rng.below(1ULL << 32);
    if (z == b) ++z;
    EXPECT_NE(coloring::cv::step(a, b), coloring::cv::step(b, z));
  }
}

TEST(ColeVishkin, ChainsAndCyclesThreeColored) {
  // One long path, one even cycle, one odd cycle, one singleton.
  const std::size_t n = 402;
  std::vector<std::size_t> succ(n, coloring::cv::npos);
  std::vector<std::uint64_t> ids(n);
  for (std::size_t i = 0; i < n; ++i) ids[i] = i * 37 % 100003;
  for (std::size_t i = 0; i + 1 < 200; ++i) succ[i] = i + 1;        // path 0..199
  for (std::size_t i = 200; i < 300; ++i) succ[i] = i + 1;          // cycle 200..300
  succ[300] = 200;
  for (std::size_t i = 301; i < 400; ++i) succ[i] = i + 1;          // odd cycle
  succ[400] = 301;
  const auto out = coloring::cv::three_color_chains(succ, ids, 100003);
  for (std::size_t i = 0; i < n; ++i) {
    EXPECT_LT(out.colors[i], 3u);
    if (succ[i] != coloring::cv::npos) {
      EXPECT_NE(out.colors[i], out.colors[succ[i]]) << i;
    }
  }
  EXPECT_LE(out.rounds, static_cast<std::size_t>(
                            coloring::cv::rounds_to_six(100003ULL * 100003) + 3));
}

// ---------------------------------------------------------------------------
// Reductions
// ---------------------------------------------------------------------------

TEST(GreedyReduce, BoundAndProperness) {
  const auto g = graph::random_regular(300, 8, 19);
  auto rep = coloring::color_o_delta(g);
  ASSERT_TRUE(rep.converged);
  const Color k = graph::max_color(rep.colors) + 1;
  auto res = coloring::reduce_colors(g, rep.colors, 9);
  EXPECT_TRUE(res.converged);
  EXPECT_TRUE(res.proper_each_round);
  EXPECT_LE(res.rounds, static_cast<std::size_t>(k - 9) + 1);
  EXPECT_LT(graph::max_color(res.colors), 9u);
}

TEST(KuhnWattenhofer, ScheduleHalves) {
  coloring::KwSchedule sched(1000, 9);
  EXPECT_EQ(sched.size(sched.phases()), 10u);
  for (std::size_t k = 0; k + 1 <= sched.phases(); ++k) {
    EXPECT_LT(sched.size(k + 1), sched.size(k));
    // One halving step: ceil(m / 2(D+1)) * (D+1).
    const std::uint64_t expect = (sched.size(k) + 19) / 20 * 10;
    EXPECT_EQ(sched.size(k + 1), expect);
  }
}

TEST(KuhnWattenhofer, ProperEveryRoundOnFamilies) {
  for (const auto& make :
       {std::function<graph::Graph()>{[] { return graph::complete(12); }},
        std::function<graph::Graph()>{[] { return graph::random_gnp(200, 0.05, 3); }},
        std::function<graph::Graph()>{[] { return graph::grid(7, 9); }}}) {
    const auto g = make();
    const auto rep = coloring::color_kuhn_wattenhofer(g);
    EXPECT_TRUE(rep.converged);
    EXPECT_TRUE(rep.proper);
    EXPECT_TRUE(rep.proper_each_round);
    EXPECT_LE(graph::max_color(rep.colors),
              std::max<std::size_t>(g.max_degree(), 1));
  }
}

// ---------------------------------------------------------------------------
// Pipelines under restricted models
// ---------------------------------------------------------------------------

TEST(Pipelines, SetLocalIsTheDefaultAndWorks) {
  const auto g = graph::random_regular(200, 7, 23);
  coloring::PipelineOptions opts;  // SET_LOCAL default
  const auto rep = coloring::color_delta_plus_one(g, opts);
  EXPECT_TRUE(rep.converged && rep.proper && rep.proper_each_round);
}

TEST(Pipelines, CongestWithWideEnoughBand) {
  const auto g = graph::random_regular(200, 7, 29);
  coloring::PipelineOptions opts;
  opts.iter.model = runtime::Model::CONGEST;
  opts.iter.congest_bits = 40;
  const auto rep = coloring::color_delta_plus_one(g, opts);
  EXPECT_TRUE(rep.converged && rep.proper);
}

TEST(Pipelines, RoundBoundsOrdering) {
  // O(Delta) pipeline beats the O(Delta log Delta) and O(Delta^2) baselines
  // at large Delta.
  const auto g = graph::random_regular(600, 48, 31);
  const auto ours = coloring::color_delta_plus_one(g);
  const auto kw = coloring::color_kuhn_wattenhofer(g);
  const auto gps = coloring::color_linial_greedy(g);
  ASSERT_TRUE(ours.converged && kw.converged && gps.converged);
  EXPECT_LT(ours.rounds, kw.rounds);
  EXPECT_LT(kw.rounds, gps.rounds);
}

}  // namespace
