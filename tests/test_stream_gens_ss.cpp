// Streaming (O(1)-memory) Linial equivalence, the structured generators'
// arithmetic, ArbAgRule unit behavior, and unit tests of every branch of the
// self-stabilizing step function.
#include <gtest/gtest.h>

#include "agc/arb/arbag.hpp"
#include "agc/coloring/linial_stream.hpp"
#include "agc/coloring/pipeline.hpp"
#include "agc/graph/generators.hpp"
#include "agc/math/polynomial.hpp"
#include "agc/selfstab/ss_coloring.hpp"

namespace {

using namespace agc;
using coloring::Color;

// ---------------------------------------------------------------------------
// Streaming Linial
// ---------------------------------------------------------------------------

TEST(StreamLinial, DigitEvalMatchesPolynomial) {
  graph::Rng rng(4);
  for (int trial = 0; trial < 3000; ++trial) {
    const std::uint64_t q = math::next_prime(3 + rng.below(200));
    const std::uint64_t value = rng.below(q * q * q);
    const auto d = static_cast<std::uint32_t>(2 + rng.below(4));
    const std::uint64_t e = rng.below(q);
    const auto poly =
        math::Polynomial::from_digits(math::GF(q), value, static_cast<int>(d));
    EXPECT_EQ(coloring::eval_digit_poly(q, value, d, e), poly.eval(e))
        << "q=" << q << " value=" << value << " e=" << e;
  }
}

TEST(StreamLinial, StepMatchesMaterializedStep) {
  coloring::LinialSchedule sched(1ULL << 24, 7);
  graph::Rng rng(8);
  for (std::size_t j = 1; j <= sched.stages(); ++j) {
    const std::uint64_t palette = sched.interval_size(j);
    for (int trial = 0; trial < 100; ++trial) {
      const std::uint64_t x = rng.below(palette);
      std::vector<std::uint64_t> xs(1 + rng.below(6));
      bool clash = false;
      for (auto& nx : xs) {
        nx = rng.below(palette);
        clash |= nx == x;
      }
      if (clash) continue;
      EXPECT_EQ(coloring::mod_linial_step_stream(sched, j, x, xs),
                coloring::mod_linial_step(sched, j, x, xs, {}));
    }
  }
}

TEST(StreamLinial, FullRunBitIdentical) {
  const auto g = graph::random_regular(300, 9, 33);
  const std::uint64_t ids = static_cast<std::uint64_t>(g.n()) << 16;
  coloring::LinialSchedule sched(ids, 9);
  const std::uint64_t top = sched.offset(sched.stages());

  auto init = coloring::identity_coloring(g.n());
  for (auto& c : init) c += top;

  coloring::LinialRule classic(sched);
  coloring::StreamLinialRule stream(sched);
  auto a = runtime::run_locally_iterative(g, init, classic);
  auto b = runtime::run_locally_iterative(g, init, stream);
  EXPECT_EQ(a.colors, b.colors);
  EXPECT_EQ(a.rounds, b.rounds);
}

// ---------------------------------------------------------------------------
// Structured generators
// ---------------------------------------------------------------------------

TEST(GeneratorsExtra, Hypercube) {
  for (std::size_t d : {1u, 3u, 6u}) {
    const auto g = graph::hypercube(d);
    EXPECT_EQ(g.n(), std::size_t{1} << d);
    EXPECT_EQ(g.m(), d * (std::size_t{1} << (d - 1)));
    EXPECT_EQ(g.max_degree(), d);
    // Bipartite: parity-of-popcount is a proper 2-coloring.
    std::vector<Color> parity(g.n());
    for (graph::Vertex v = 0; v < g.n(); ++v) {
      parity[v] = static_cast<Color>(__builtin_popcountll(v) & 1);
    }
    EXPECT_TRUE(graph::is_proper_coloring(g, parity));
  }
}

TEST(GeneratorsExtra, CompleteMultipartite) {
  const auto g = graph::complete_multipartite(4, 5);
  EXPECT_EQ(g.n(), 20u);
  EXPECT_EQ(g.max_degree(), 15u);
  EXPECT_EQ(g.m(), 4u * 3 / 2 * 5 * 5);
  // Part index is a proper 4-coloring.
  std::vector<Color> parts(g.n());
  for (graph::Vertex v = 0; v < g.n(); ++v) parts[v] = v / 5;
  EXPECT_TRUE(graph::is_proper_coloring(g, parts));
}

TEST(GeneratorsExtra, Caterpillar) {
  const auto g = graph::caterpillar(10, 4);
  EXPECT_EQ(g.n(), 50u);
  EXPECT_EQ(g.m(), 9u + 40u);
  EXPECT_EQ(graph::degeneracy(g), 1u);  // a tree
  EXPECT_EQ(g.max_degree(), 6u);        // legs + 2 spine neighbors
}

TEST(GeneratorsExtra, CycleBlowup) {
  const auto g = graph::cycle_blowup(5, 4);
  EXPECT_EQ(g.n(), 20u);
  EXPECT_EQ(g.max_degree(), 8u);  // 2 * blow
  // Odd blown-up cycles need 3 position colors: the pipeline must still land
  // within Delta+1 and be proper.
  const auto rep = coloring::color_delta_plus_one(g);
  EXPECT_TRUE(rep.proper && rep.converged);
}

TEST(GeneratorsExtra, PipelineOnNewFamilies) {
  for (const auto& g :
       {graph::hypercube(6), graph::complete_multipartite(3, 7),
        graph::caterpillar(20, 5), graph::cycle_blowup(7, 3)}) {
    const auto rep = coloring::color_delta_plus_one_exact(g);
    EXPECT_TRUE(rep.proper && rep.converged && rep.proper_each_round);
    EXPECT_LE(graph::max_color(rep.colors), g.max_degree());
  }
}

// ---------------------------------------------------------------------------
// ArbAgRule units
// ---------------------------------------------------------------------------

TEST(ArbAgRule, FrozenStatesAreFixedPoints) {
  arb::ArbAgRule rule(11, 2);
  const Color frozen = arb::ArbAgRule::pack(5, 0, 7, 11);
  EXPECT_TRUE(rule.is_final(frozen));
  EXPECT_EQ(rule.class_of(frozen), 7u);
  std::vector<Color> nbrs = {arb::ArbAgRule::pack(3, 2, 7, 11),
                             arb::ArbAgRule::pack(4, 1, 7, 11),
                             arb::ArbAgRule::pack(6, 3, 7, 11)};
  std::sort(nbrs.begin(), nbrs.end());
  EXPECT_EQ(rule.step(frozen, nbrs), frozen);  // even with > p conflicts
}

TEST(ArbAgRule, ToleranceThreshold) {
  arb::ArbAgRule rule(11, 2);
  const Color c = arb::ArbAgRule::pack(9, 3, 5, 11);
  // Two different-psi conflicts: freezes.
  std::vector<Color> two = {arb::ArbAgRule::pack(1, 1, 5, 11),
                            arb::ArbAgRule::pack(2, 0, 5, 11)};
  std::sort(two.begin(), two.end());
  EXPECT_EQ(rule.step(c, two), arb::ArbAgRule::pack(9, 0, 5, 11));
  // Three: shifts b by a.
  auto three = two;
  three.push_back(arb::ArbAgRule::pack(3, 4, 5, 11));
  std::sort(three.begin(), three.end());
  EXPECT_EQ(rule.step(c, three), arb::ArbAgRule::pack(9, 3, (5 + 3) % 11, 11));
  // Same-psi conflicts are ignored entirely.
  std::vector<Color> same = {arb::ArbAgRule::pack(9, 1, 5, 11),
                             arb::ArbAgRule::pack(9, 2, 5, 11),
                             arb::ArbAgRule::pack(9, 4, 5, 11)};
  std::sort(same.begin(), same.end());
  EXPECT_EQ(rule.step(c, same), arb::ArbAgRule::pack(9, 0, 5, 11));
}

// ---------------------------------------------------------------------------
// SsConfig::step branch coverage
// ---------------------------------------------------------------------------

class SsStepBranches : public ::testing::Test {
 protected:
  SsStepBranches() : cfg_(64, 3, selfstab::PaletteMode::ODelta) {}
  selfstab::SsConfig cfg_;
};

TEST_F(SsStepBranches, InvalidValueResets) {
  EXPECT_EQ(cfg_.step(5, cfg_.span() + 123, {}), cfg_.reset_color(5));
}

TEST_F(SsStepBranches, NeighborConflictResets) {
  const std::uint64_t c = cfg_.reset_color(9);
  std::vector<std::uint64_t> nbrs = {c};
  EXPECT_EQ(cfg_.step(7, c, nbrs), cfg_.reset_color(7));
}

TEST_F(SsStepBranches, DescendsOneIntervalPerRound) {
  const auto& sched = cfg_.schedule();
  std::uint64_t c = cfg_.reset_color(12);
  std::size_t j = sched.interval_of(c);
  while (j >= 1) {
    const std::uint64_t next = cfg_.step(12, c, {});
    EXPECT_EQ(sched.interval_of(next), j - 1);
    c = next;
    j = sched.interval_of(c);
  }
  // Interval 0: AG finalizes with no conflicts -> final color, then stays.
  const std::uint64_t fin = cfg_.step(12, c, {});
  EXPECT_TRUE(cfg_.is_final(fin));
  EXPECT_EQ(cfg_.step(12, fin, {}), fin);
}

TEST_F(SsStepBranches, AgConflictShiftsInsideIntervalZero) {
  // Craft an I_0 working state <a=2, b=5> and a conflicting neighbor.
  const std::uint64_t q = cfg_.final_palette();
  const std::uint64_t c = 2 * q + 5;
  std::vector<std::uint64_t> nbrs = {3 * q + 5};  // same b, different a
  EXPECT_EQ(cfg_.step(1, c, nbrs), 2 * q + (5 + 2) % q);
  // Without conflict: finalize to <0,5>.
  std::vector<std::uint64_t> calm = {3 * q + 6};
  EXPECT_EQ(cfg_.step(1, c, calm), 5u);
}

TEST(SsStepExact, LiftedStatesStayDisjointFromLinialIntervals) {
  selfstab::SsConfig cfg(64, 3, selfstab::PaletteMode::ExactDeltaPlusOne);
  // I_0 must be wide enough to host the mixed state space.
  EXPECT_GE(cfg.schedule().interval_size(0), cfg.final_palette());
  // Malformed high states <0,0,a> reset.
  const std::uint64_t low_span = 2 * cfg.final_palette();
  EXPECT_EQ(cfg.step(4, low_span + 1, {}), cfg.reset_color(4));
}

TEST(SsMemory, OneWordOfRamPerVertex) {
  // The paper's O(1)-memory claim: the whole mutable state is one color word.
  selfstab::SsConfig cfg(16, 2, selfstab::PaletteMode::ODelta);
  selfstab::SsColoringProgram prog(cfg);
  EXPECT_EQ(prog.ram().size(), 1u);
}

}  // namespace
