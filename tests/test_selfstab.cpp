// Self-stabilization suite: Section 4 (coloring, MIS, line-graph MM and
// edge coloring) and the Section 7 exact-(Delta+1) variant, under RAM
// corruption, worst-case color cloning, edge churn and vertex churn.
#include <gtest/gtest.h>

#include "agc/graph/checks.hpp"
#include "agc/graph/generators.hpp"
#include "agc/runtime/faults.hpp"
#include "agc/selfstab/ss_coloring.hpp"
#include "agc/selfstab/ss_line.hpp"
#include "agc/selfstab/ss_mis.hpp"

namespace {

using namespace agc;
using selfstab::PaletteMode;
using selfstab::SsConfig;

runtime::Engine make_engine(graph::Graph g, std::size_t delta_bound) {
  runtime::EngineOptions opts;
  opts.delta_bound = delta_bound;
  return runtime::Engine(std::move(g), runtime::Transport(runtime::Model::LOCAL),
                         opts);
}

std::size_t stabilization_budget(const SsConfig& cfg, std::size_t n) {
  // O(Delta + log* n) with generous constants.
  return 24 * (cfg.delta() + 2) + 8 * (cfg.schedule().stages() + 2) + 64 + n / 10;
}

TEST(SsColoring, StabilizesFromScratchODelta) {
  const auto g = graph::random_regular(120, 6, 11);
  SsConfig cfg(g.n(), g.max_degree(), PaletteMode::ODelta);
  auto engine = make_engine(g, g.max_degree());
  engine.install(selfstab::ss_coloring_factory(cfg));
  const auto rep =
      selfstab::run_until_stable(engine, cfg, stabilization_budget(cfg, g.n()));
  ASSERT_TRUE(rep.stabilized);
  EXPECT_TRUE(graph::is_proper_coloring(g, rep.colors));
  EXPECT_LT(graph::max_color(rep.colors), cfg.final_palette());
}

TEST(SsColoring, StabilizesFromScratchExact) {
  const auto g = graph::random_regular(120, 6, 12);
  SsConfig cfg(g.n(), g.max_degree(), PaletteMode::ExactDeltaPlusOne);
  auto engine = make_engine(g, g.max_degree());
  engine.install(selfstab::ss_coloring_factory(cfg));
  const auto rep =
      selfstab::run_until_stable(engine, cfg, stabilization_budget(cfg, g.n()));
  ASSERT_TRUE(rep.stabilized);
  EXPECT_TRUE(graph::is_proper_coloring(g, rep.colors));
  EXPECT_LE(graph::max_color(rep.colors), g.max_degree());  // exactly Delta+1 colors
}

TEST(SsColoring, RecoversFromRamCorruption) {
  const auto g = graph::random_gnp(150, 0.06, 5);
  SsConfig cfg(g.n(), g.max_degree(), PaletteMode::ODelta);
  auto engine = make_engine(g, g.max_degree());
  engine.install(selfstab::ss_coloring_factory(cfg));
  ASSERT_TRUE(
      selfstab::run_until_stable(engine, cfg, stabilization_budget(cfg, g.n()))
          .stabilized);

  runtime::Adversary adv(99);
  adv.corrupt_random(engine, 40, cfg.span() * 2);  // includes invalid values
  adv.clone_neighbor(engine, 20);                  // guaranteed conflicts
  const auto rep =
      selfstab::run_until_stable(engine, cfg, stabilization_budget(cfg, g.n()));
  EXPECT_TRUE(rep.stabilized);
}

TEST(SsColoring, RecoversFromChurn) {
  const std::size_t dmax = 10;
  const auto g = graph::random_bounded_degree(120, dmax, 300, 17);
  SsConfig cfg(g.n(), dmax, PaletteMode::ExactDeltaPlusOne);
  runtime::EngineOptions eo;
  eo.delta_bound = dmax;
  runtime::Engine engine(g, runtime::Transport(runtime::Model::LOCAL), eo);
  engine.install(selfstab::ss_coloring_factory(cfg));
  ASSERT_TRUE(
      selfstab::run_until_stable(engine, cfg, stabilization_budget(cfg, g.n()))
          .stabilized);

  runtime::Adversary adv(7);
  adv.churn_edges(engine, 30, 30, dmax);
  adv.churn_vertices(engine, 5, 3, dmax);
  const auto rep = selfstab::run_until_stable(engine, cfg,
                                              stabilization_budget(cfg, g.n()));
  EXPECT_TRUE(rep.stabilized);
  EXPECT_LE(graph::max_color(rep.colors), dmax);  // palette stays Delta+1
}

TEST(SsColoring, AdjustmentRadiusOne) {
  // Corrupt a single vertex; only its 1-hop neighborhood may change color.
  const auto g = graph::random_regular(100, 4, 23);
  SsConfig cfg(g.n(), g.max_degree(), PaletteMode::ODelta);
  auto engine = make_engine(g, g.max_degree());
  engine.install(selfstab::ss_coloring_factory(cfg));
  ASSERT_TRUE(
      selfstab::run_until_stable(engine, cfg, stabilization_budget(cfg, g.n()))
          .stabilized);

  const auto before = selfstab::current_colors(engine);
  const graph::Vertex victim = 42;
  // Clone a neighbor's color: forces victim (and possibly that neighborhood)
  // to recompute.
  engine.corrupt_ram(victim, 0, before[engine.graph().neighbors(victim)[0]]);
  const auto rep =
      selfstab::run_until_stable(engine, cfg, stabilization_budget(cfg, g.n()));
  ASSERT_TRUE(rep.stabilized);

  for (graph::Vertex v = 0; v < g.n(); ++v) {
    if (v == victim || g.has_edge(v, victim)) continue;
    EXPECT_EQ(rep.colors[v], before[v]) << "vertex " << v << " outside the 1-hop "
                                        << "neighborhood changed color";
  }
}

TEST(SsMis, StabilizesAndRecovers) {
  const auto g = graph::random_gnp(120, 0.05, 31);
  SsConfig cfg(g.n(), std::max<std::size_t>(g.max_degree(), 1), PaletteMode::ODelta);
  auto engine = make_engine(g, std::max<std::size_t>(g.max_degree(), 1));
  engine.install(selfstab::ss_mis_factory(cfg));
  auto rep = selfstab::run_until_mis_stable(
      engine, cfg, 4 * stabilization_budget(cfg, g.n()));
  ASSERT_TRUE(rep.stabilized);
  EXPECT_TRUE(graph::is_mis(g, rep.in_mis));

  runtime::Adversary adv(3);
  adv.corrupt_random(engine, 30, cfg.span(), /*word=*/0);  // colors
  adv.corrupt_random(engine, 30, 4, /*word=*/1);           // statuses
  rep = selfstab::run_until_mis_stable(engine, cfg,
                                       4 * stabilization_budget(cfg, g.n()));
  EXPECT_TRUE(rep.stabilized);
  EXPECT_TRUE(graph::is_mis(g, rep.in_mis));
}

TEST(SsLine, EdgeColoringStabilizesToTwoDeltaMinusOne) {
  const auto g = graph::random_regular(60, 5, 77);
  selfstab::SsLineConfig cfg(g.n(), g.max_degree(), selfstab::LineTask::EdgeColoring);
  auto engine = make_engine(g, g.max_degree());
  engine.install(selfstab::ss_line_factory(cfg));
  const std::size_t budget =
      4 * stabilization_budget(cfg.coloring(), g.n()) + 4 * g.n();
  const auto rep = selfstab::run_until_line_stable(engine, cfg, budget);
  ASSERT_TRUE(rep.stabilized);
  const auto colors = selfstab::current_edge_colors(engine);
  EXPECT_TRUE(graph::is_proper_edge_coloring(g, colors));
  EXPECT_LT(graph::max_color(colors), 2 * g.max_degree() - 1)
      << "palette must be exactly 2*Delta-1";
}

TEST(SsLine, MaximalMatchingStabilizesAndRecovers) {
  const auto g = graph::random_gnp(60, 0.08, 41);
  selfstab::SsLineConfig cfg(g.n(), std::max<std::size_t>(g.max_degree(), 1),
                             selfstab::LineTask::MaximalMatching);
  auto engine = make_engine(g, std::max<std::size_t>(g.max_degree(), 1));
  engine.install(selfstab::ss_line_factory(cfg));
  const std::size_t budget =
      8 * stabilization_budget(cfg.coloring(), g.n()) + 8 * g.n();
  auto rep = selfstab::run_until_line_stable(engine, cfg, budget);
  ASSERT_TRUE(rep.stabilized);
  EXPECT_TRUE(graph::is_maximal_matching(g, selfstab::current_matching(engine)));

  runtime::Adversary adv(5);
  for (graph::Vertex v = 0; v < 20; ++v) {
    adv.corrupt_random(engine, 3, cfg.coloring().span() << 2);
  }
  rep = selfstab::run_until_line_stable(engine, cfg, budget);
  EXPECT_TRUE(rep.stabilized);
  EXPECT_TRUE(graph::is_maximal_matching(g, selfstab::current_matching(engine)));
}

}  // namespace
