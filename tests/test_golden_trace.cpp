// Golden execution traces of the round engine's message path.
//
// Each scenario runs a full algorithm through the engine and folds every
// observable the message path can influence — final colorings / RAM, round
// counts, and Metrics (messages, total_bits, max_edge_bits) — into one
// FNV-1a hash.  The expected constants below were generated from the
// nested-vector mailbox engine BEFORE the CSR mailbox-arena refactor, so any
// behavioral drift in the send/validate/deliver/receive path (contents,
// order, accounting, model enforcement) fails loudly.  Every scenario is also
// checked across executor thread counts {1, 2, 8}, pinning the exec
// subsystem's shard-determinism contract at the same time.
//
// Regenerate (only when an *intentional* behavior change lands):
//   AGC_PRINT_GOLDEN=1 ./tests/test_golden_trace
#include <gtest/gtest.h>

#include <cstdio>
#include <cstdlib>
#include <vector>

#include "agc/coloring/pipeline.hpp"
#include "agc/edge/edge_coloring.hpp"
#include "agc/exec/executor.hpp"
#include "agc/graph/generators.hpp"
#include "agc/runtime/engine.hpp"
#include "agc/runtime/faults.hpp"
#include "agc/selfstab/ss_line.hpp"
#include "agc/selfstab/ss_mis.hpp"

namespace {

using namespace agc;

class Fnv {
 public:
  void mix(std::uint64_t x) {
    for (int i = 0; i < 8; ++i) {
      h_ ^= (x >> (8 * i)) & 0xff;
      h_ *= 1099511628211ULL;
    }
  }
  void mix_metrics(const runtime::Metrics& m) {
    mix(m.rounds);
    mix(m.messages);
    mix(m.total_bits);
    mix(m.max_edge_bits);
  }
  template <typename T>
  void mix_all(const std::vector<T>& xs) {
    mix(xs.size());
    for (const auto& x : xs) mix(static_cast<std::uint64_t>(x));
  }
  [[nodiscard]] std::uint64_t value() const { return h_; }

 private:
  std::uint64_t h_ = 14695981039346656037ULL;
};

bool print_golden() { return std::getenv("AGC_PRINT_GOLDEN") != nullptr; }

void check(const char* scenario, std::uint64_t got, std::uint64_t want) {
  if (print_golden()) {
    std::printf("    {\"%s\", 0x%016llxULL},\n", scenario,
                static_cast<unsigned long long>(got));
    return;
  }
  EXPECT_EQ(got, want) << scenario;
}

std::vector<graph::Graph> golden_graphs() {
  std::vector<graph::Graph> gs;
  gs.push_back(graph::random_gnp(240, 0.05, 3));
  gs.push_back(graph::random_regular(300, 8, 7));
  gs.push_back(graph::grid(12, 18));
  gs.push_back(graph::cycle(17));
  return gs;
}

// The full (Delta+1)-pipeline per model/graph/thread count.  LOCAL, CONGEST
// and SET-LOCAL all route through the same mailbox path with different
// validation; BIT is covered by the edge-coloring scenario below.
TEST(GoldenTrace, PipelineAcrossModels) {
  // One constant per (graph, model); the three models happen to agree on each
  // graph because they differ only in validation, never in message content.
  constexpr std::uint64_t kWant[] = {
      0x31fc83a5d43c3583ULL, 0x31fc83a5d43c3583ULL, 0x31fc83a5d43c3583ULL,
      0xf132abfa092f199cULL, 0xf132abfa092f199cULL, 0xf132abfa092f199cULL,
      0x259f0e259495a0ccULL, 0x259f0e259495a0ccULL, 0x259f0e259495a0ccULL,
      0x73071641ae0dec8cULL, 0x73071641ae0dec8cULL, 0x73071641ae0dec8cULL,
  };
  std::size_t scenario = 0;
  for (const auto& g : golden_graphs()) {
    for (const runtime::Model model :
         {runtime::Model::SET_LOCAL, runtime::Model::LOCAL,
          runtime::Model::CONGEST}) {
      std::uint64_t first = 0;
      for (const std::size_t threads : {1, 2, 8}) {
        coloring::PipelineOptions opts;
        opts.iter.model = model;
        opts.iter.executor = exec::make_executor(threads);
        const auto rep = coloring::color_delta_plus_one(g, opts);
        ASSERT_TRUE(rep.converged);
        ASSERT_TRUE(rep.proper);
        Fnv h;
        h.mix_all(rep.colors);
        h.mix(rep.rounds);
        h.mix(rep.palette);
        h.mix(static_cast<std::uint64_t>(rep.proper_each_round));
        h.mix_metrics(rep.metrics);
        if (threads == 1) {
          first = h.value();
          char name[64];
          std::snprintf(name, sizeof name, "pipeline[%zu]", scenario);
          check(name, h.value(), kWant[scenario]);
        } else {
          EXPECT_EQ(h.value(), first)
              << "thread-count divergence, scenario " << scenario
              << " threads " << threads;
        }
      }
      ++scenario;
    }
  }
}

// The CONGEST and Bit-Round edge-coloring pipeline: multi-word and 1-bit
// messages, per-port directed sends, max_edge_bits accounting.
TEST(GoldenTrace, EdgeColoringCongestAndBit) {
  const auto g = graph::random_regular(80, 6, 5);
  constexpr std::uint64_t kWantCongest = 0x33827a44935e31feULL;
  constexpr std::uint64_t kWantBit = 0xca0f1388f5b375a6ULL;
  for (const bool bit_round : {false, true}) {
    std::uint64_t first = 0;
    for (const std::size_t threads : {1, 2, 8}) {
      edge::EdgeColoringOptions opts;
      opts.exact = true;
      opts.bit_round = bit_round;
      opts.executor = exec::make_executor(threads);
      const auto res = edge::color_edges_distributed(g, opts);
      ASSERT_TRUE(res.proper);
      Fnv h;
      h.mix_all(res.colors);
      h.mix(res.rounds);
      h.mix(res.palette);
      h.mix_metrics(res.metrics);
      if (threads == 1) {
        first = h.value();
        check(bit_round ? "edge_bit" : "edge_congest", h.value(),
              bit_round ? kWantBit : kWantCongest);
      } else {
        EXPECT_EQ(h.value(), first) << "bit_round=" << bit_round;
      }
    }
  }
}

// A fault-adversary trajectory over the self-stabilizing MIS: RAM corruption,
// worst-case cloning, and edge churn between stabilization epochs.  Hashes
// the full RAM of every vertex after every epoch.
TEST(GoldenTrace, SelfStabMisTrajectory) {
  constexpr std::uint64_t kWant = 0xd27da579be8ba4a4ULL;
  const std::size_t delta = 9;
  const auto g = graph::random_regular(150, 6, 11);
  selfstab::SsConfig cfg(g.n(), delta, selfstab::PaletteMode::ExactDeltaPlusOne);
  std::uint64_t first = 0;
  for (const std::size_t threads : {1, 2, 8}) {
    runtime::EngineOptions eo;
    eo.delta_bound = delta;
    runtime::Engine engine(g, runtime::Transport(runtime::Model::LOCAL), eo);
    engine.set_executor(exec::make_executor(threads));
    engine.install(selfstab::ss_mis_factory(cfg));
    runtime::Adversary adv(123);
    Fnv h;
    for (int epoch = 0; epoch < 3; ++epoch) {
      if (epoch > 0) {
        adv.corrupt_random(engine, 10, cfg.span());
        adv.clone_neighbor(engine, 5);
        adv.churn_edges(engine, 4, 4, delta);
      }
      const auto rep = selfstab::run_until_mis_stable(engine, cfg, 100000);
      ASSERT_TRUE(rep.stabilized);
      h.mix(rep.rounds_to_stable);
      for (graph::Vertex v = 0; v < engine.graph().n(); ++v) {
        for (const std::uint64_t w : engine.program(v).ram()) h.mix(w);
      }
      h.mix_metrics(engine.metrics());
    }
    if (threads == 1) {
      first = h.value();
      check("ss_mis_trajectory", h.value(), kWant);
    } else {
      EXPECT_EQ(h.value(), first) << "threads " << threads;
    }
  }
}

// The LOCAL-model line-graph simulation (multi-word messages per port — the
// spill path of the arena) through maximal matching stabilization.
TEST(GoldenTrace, SelfStabLineMatching) {
  constexpr std::uint64_t kWant = 0xa18924112189721fULL;
  const auto g = graph::random_gnp(60, 0.08, 21);
  selfstab::SsLineConfig cfg(g.n(), g.max_degree(),
                             selfstab::LineTask::MaximalMatching);
  std::uint64_t first = 0;
  for (const std::size_t threads : {1, 2, 8}) {
    runtime::EngineOptions eo;
    eo.delta_bound = g.max_degree();
    runtime::Engine engine(g, runtime::Transport(runtime::Model::LOCAL), eo);
    engine.set_executor(exec::make_executor(threads));
    engine.install(selfstab::ss_line_factory(cfg));
    const auto rep = selfstab::run_until_line_stable(engine, cfg, 100000);
    ASSERT_TRUE(rep.stabilized);
    Fnv h;
    h.mix(rep.rounds_to_stable);
    for (graph::Vertex v = 0; v < engine.graph().n(); ++v) {
      for (const std::uint64_t w : engine.program(v).ram()) h.mix(w);
    }
    h.mix_metrics(engine.metrics());
    if (threads == 1) {
      first = h.value();
      check("ss_line_matching", h.value(), kWant);
    } else {
      EXPECT_EQ(h.value(), first) << "threads " << threads;
    }
  }
}

}  // namespace
