// Arbdefective suite (Section 6): defective Linial seed, Arbdefective-Color,
// and the classwise (1+eps)Delta / (Delta+1) constructions of Theorem 6.4.
#include <gtest/gtest.h>

#include "agc/arb/defective.hpp"
#include "agc/arb/arbag.hpp"
#include "agc/arb/eps_coloring.hpp"
#include "agc/graph/generators.hpp"

namespace {

using namespace agc;

TEST(Defective, DefectStaysWithinBudget) {
  const auto g = graph::random_regular(200, 16, 2);
  for (std::size_t p : {2u, 4u, 8u}) {
    const auto res = arb::defective_color(g, p, g.n());
    EXPECT_TRUE(res.converged) << "p=" << p << " defect=" << res.max_defect;
    EXPECT_LE(res.max_defect, p);
    EXPECT_LE(res.rounds, 12u);  // log* + O(1)
  }
}

TEST(Defective, PaletteShrinksWithBudget) {
  const auto g = graph::random_regular(300, 32, 4);
  const auto strict = arb::defective_color(g, 1, g.n());
  const auto loose = arb::defective_color(g, 8, g.n());
  EXPECT_LE(loose.palette_bound, strict.palette_bound);
}

TEST(ArbAg, ClassesAndArbdefect) {
  const auto g = graph::random_regular(200, 25, 7);
  const std::size_t p = 5;  // sqrt(Delta)
  const auto arb = arb::arbdefective_color(g, p, g.n());
  EXPECT_TRUE(arb.converged);
  // O(Delta/p) classes.
  EXPECT_LE(arb.num_classes, 8 * (g.max_degree() / p + 1));
  // Lemma 6.2 witness: out-degree over monochromatic edges <= p + seed defect.
  EXPECT_LE(arb::measured_arbdefect(g, arb), p + arb.seed_defect);
}

TEST(ArbAg, RoundsScaleWithDeltaOverP) {
  const auto g = graph::random_regular(300, 36, 9);
  const auto fine = arb::arbdefective_color(g, 2, g.n());
  const auto coarse = arb::arbdefective_color(g, 12, g.n());
  ASSERT_TRUE(fine.converged && coarse.converged);
  // The worst-case window is 2*ceil(Delta/p)+1 rounds; measured rounds never
  // exceed it (plus the log* seed).
  EXPECT_GT(fine.window, coarse.window);
  EXPECT_LE(fine.rounds, fine.window + fine.seed_rounds);
  EXPECT_LE(coarse.rounds, coarse.window + coarse.seed_rounds);
}

TEST(EpsColoring, ProperWithinPalette) {
  const auto g = graph::random_gnp(250, 0.08, 3);
  const auto res = arb::eps_delta_coloring(g, 0.5);
  ASSERT_TRUE(res.converged);
  EXPECT_TRUE(res.proper);
  EXPECT_LE(graph::max_color(res.colors),
            static_cast<std::uint64_t>(1.5 * g.max_degree()) + 1);
}

TEST(EpsColoring, SublinearDeltaPlusOne) {
  const auto g = graph::random_regular(300, 24, 5);
  const auto res = arb::sublinear_delta_plus_one(g);
  ASSERT_TRUE(res.converged);
  EXPECT_TRUE(res.proper);
  EXPECT_LE(graph::max_color(res.colors), g.max_degree());
}

}  // namespace
