// Exhaustive and randomized property tests for the update rules themselves:
// properness preservation over ALL small configurations (the inductive heart
// of Lemmas 3.2, 7.1 and 7.4), state-space closure, and determinism.
#include <gtest/gtest.h>

#include "agc/coloring/ag.hpp"
#include "agc/coloring/ag3.hpp"
#include "agc/coloring/kuhn_wattenhofer.hpp"
#include "agc/coloring/linial.hpp"
#include "agc/coloring/pipeline.hpp"
#include "agc/graph/generators.hpp"

namespace {

using namespace agc;
using coloring::Color;

/// Apply `rule` synchronously on a triangle/path of 3 vertices with colors
/// (a, b, c); returns the next colors.  Vertex 1 is adjacent to 0 and 2;
/// 0 and 2 are adjacent iff `triangle`.
template <typename Rule>
std::array<Color, 3> step3(const Rule& rule, Color a, Color b, Color c,
                           bool triangle) {
  auto ms = [](std::initializer_list<Color> xs) {
    std::vector<Color> v(xs);
    std::sort(v.begin(), v.end());
    return v;
  };
  const auto na = rule.step(a, triangle ? ms({b, c}) : ms({b}));
  const auto nb = rule.step(b, ms({a, c}));
  const auto nc = rule.step(c, triangle ? ms({a, b}) : ms({b}));
  return {na, nb, nc};
}

TEST(ExhaustiveAg, PathAndTriangleProper) {
  // Lemma 3.2 checked over every proper configuration with q = 5.
  const std::uint64_t q = 5;
  coloring::AgRule rule(q);
  for (Color a = 0; a < q * q; ++a) {
    for (Color b = 0; b < q * q; ++b) {
      if (b == a) continue;
      for (Color c = 0; c < q * q; ++c) {
        if (c == b) continue;
        {  // path 0-1-2 (a==c allowed)
          const auto [na, nb, nc] = step3(rule, a, b, c, false);
          EXPECT_NE(na, nb) << a << "," << b << "," << c;
          EXPECT_NE(nb, nc) << a << "," << b << "," << c;
        }
        if (c != a) {  // triangle
          const auto [na, nb, nc] = step3(rule, a, b, c, true);
          EXPECT_NE(na, nb);
          EXPECT_NE(nb, nc);
          EXPECT_NE(na, nc);
        }
      }
    }
  }
}

TEST(ExhaustiveAgn, EdgeProper) {
  const std::uint64_t N = 6;  // composite group
  coloring::AgnRule rule(N);
  for (Color a = 0; a < 2 * N; ++a) {
    for (Color b = 0; b < 2 * N; ++b) {
      if (a == b) continue;
      const Color na = rule.step(a, std::vector<Color>{b});
      const Color nb = rule.step(b, std::vector<Color>{a});
      EXPECT_NE(na, nb) << a << "," << b;
      EXPECT_LT(na, 2 * N);
    }
  }
}

TEST(ExhaustiveMixed, EdgeProper) {
  // Lemma 7.4's induction over every proper pair of mixed states (Delta=2).
  coloring::MixedRule rule(2, /*palette=*/25);
  const std::uint64_t space = 2 * rule.n() + rule.p() * rule.p();
  for (Color a = 0; a < space; ++a) {
    for (Color b = 0; b < space; ++b) {
      if (a == b) continue;
      const Color na = rule.step(a, std::vector<Color>{b});
      const Color nb = rule.step(b, std::vector<Color>{a});
      EXPECT_NE(na, nb) << a << "," << b;
      EXPECT_LT(na, space);
    }
  }
}

TEST(ExhaustiveMixed3, EdgeProper) {
  coloring::Mixed3Rule rule(2, /*palette=*/125);
  const std::uint64_t space = rule.space();
  const std::uint64_t low = 2 * rule.n();
  for (Color a = 0; a < space; ++a) {
    if (a >= low && a < low + rule.p()) continue;  // malformed high states
    for (Color b = 0; b < space; ++b) {
      if (a == b || (b >= low && b < low + rule.p())) continue;
      const Color na = rule.step(a, std::vector<Color>{b});
      const Color nb = rule.step(b, std::vector<Color>{a});
      EXPECT_NE(na, nb) << a << "," << b;
      EXPECT_LT(na, space);
    }
  }
}

TEST(RandomizedMixed3, TriangleProper) {
  coloring::Mixed3Rule rule(4, /*palette=*/300);
  const std::uint64_t space = rule.space();
  const std::uint64_t low = 2 * rule.n();
  graph::Rng rng(9);
  auto valid = [&](Color c) { return c < low || c >= low + rule.p(); };
  int done = 0;
  while (done < 30000) {
    const Color a = rng.below(space);
    const Color b = rng.below(space);
    const Color c = rng.below(space);
    if (a == b || b == c || a == c) continue;
    if (!valid(a) || !valid(b) || !valid(c)) continue;
    ++done;
    const auto [na, nb, nc] = step3(rule, a, b, c, true);
    ASSERT_NE(na, nb) << a << "," << b << "," << c;
    ASSERT_NE(nb, nc) << a << "," << b << "," << c;
    ASSERT_NE(na, nc) << a << "," << b << "," << c;
  }
}

TEST(RandomizedKw, SameIntervalPairsStayProper) {
  // Pairwise properness holds unconditionally for same-interval neighbors;
  // cross-interval configurations are constrained by the run invariant
  // (descents are injective and picks exclude occupied positions), which the
  // per-round properness checks of every KW run cover.
  coloring::KwSchedule sched(200, 4);
  coloring::KwRule rule(sched);
  const std::uint64_t span = sched.offset(0) + sched.size(0);
  graph::Rng rng(12);
  int done = 0;
  while (done < 20000) {
    const Color a = rng.below(span);
    const Color b = rng.below(span);
    if (a == b || sched.interval_of(a) != sched.interval_of(b)) continue;
    ++done;
    const Color na = rule.step(a, std::vector<Color>{b});
    const Color nb = rule.step(b, std::vector<Color>{a});
    ASSERT_NE(na, nb) << a << "," << b;
    ASSERT_LT(na, span);
  }
}

TEST(RandomizedLinial, ProperPairsStayProper) {
  coloring::LinialSchedule sched(100000, 3);
  coloring::LinialRule rule(sched);
  const std::uint64_t span = sched.total_span();
  graph::Rng rng(21);
  int done = 0;
  while (done < 5000) {
    const Color a = rng.below(span);
    const Color b = rng.below(span);
    if (a == b) continue;
    ++done;
    const Color na = rule.step(a, std::vector<Color>{b});
    const Color nb = rule.step(b, std::vector<Color>{a});
    ASSERT_NE(na, nb) << a << "," << b;
    ASSERT_LT(na, span);
  }
}

TEST(Determinism, PipelinesAreReproducible) {
  const auto g = graph::random_gnp(150, 0.06, 77);
  const auto a = coloring::color_delta_plus_one(g);
  const auto b = coloring::color_delta_plus_one(g);
  EXPECT_EQ(a.colors, b.colors);
  EXPECT_EQ(a.rounds, b.rounds);
  EXPECT_EQ(a.metrics.total_bits, b.metrics.total_bits);
}

TEST(Monotonicity, FinalizedAgVerticesNeverChange) {
  // Once a vertex holds a final AG color, no later round moves it — checked
  // along a real run via the trace hook.
  const auto g = graph::random_regular(200, 10, 31);
  auto lin = coloring::linial_color(g, coloring::identity_coloring(g.n()), g.n(),
                                    10);
  const std::uint64_t q =
      coloring::ag_modulus(10, graph::max_color(lin.colors) + 1);
  coloring::AgRule rule(q);
  std::vector<Color> prev;
  runtime::IterativeOptions io;
  io.on_round = [&](std::size_t, std::span<const Color> colors) {
    if (!prev.empty()) {
      for (std::size_t v = 0; v < colors.size(); ++v) {
        if (rule.is_final(prev[v])) {
          EXPECT_EQ(colors[v], prev[v]) << v;
        }
      }
    }
    prev.assign(colors.begin(), colors.end());
  };
  auto res = runtime::run_locally_iterative(g, std::move(lin.colors), rule, io);
  EXPECT_TRUE(res.converged);
}

}  // namespace
